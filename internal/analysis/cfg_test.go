package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (one file of package p) and returns the
// named function's declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, fset
		}
	}
	t.Fatalf("no func %s in src", name)
	return nil, nil, nil
}

// reachable walks the graph from entry.
func reachable(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestBuildCFGShapes(t *testing.T) {
	src := `package p

func diamond(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}

func loop(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}

func sw(n int) string {
	switch n {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	}
	for range 3 {
		n++
	}
	return "big"
}
`
	for _, name := range []string{"diamond", "loop", "sw"} {
		fd, _, _ := parseFunc(t, src, name)
		g := BuildCFG(fd.Body)
		seen := reachable(g)
		if !seen[g.Exit] {
			t.Errorf("%s: exit not reachable from entry", name)
		}
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				foundPred := false
				for _, p := range s.Preds {
					if p == b {
						foundPred = true
					}
				}
				if !foundPred {
					t.Errorf("%s: edge %d->%d missing back-pointer", name, b.Index, s.Index)
				}
			}
		}
	}

	// The loop must contain a cycle (a reachable block that can reach
	// itself) — straight-line lowering would hide the fixpoint.
	fd, _, _ := parseFunc(t, src, "loop")
	g := BuildCFG(fd.Body)
	hasCycle := false
	for _, b := range reachableList(g) {
		if reachesItself(b) {
			hasCycle = true
		}
	}
	if !hasCycle {
		t.Error("loop: CFG has no cycle")
	}
}

func reachableList(g *CFG) []*Block {
	var out []*Block
	for b := range reachable(g) {
		out = append(out, b)
	}
	return out
}

func reachesItself(start *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == start {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(start)
}

// TestForwardFlowMayJoin drives the engine with a toy taint transfer:
// a branch that may re-taint x must leave the fact alive at the join,
// while a straight-line strong update must kill it.
func TestForwardFlowMayJoin(t *testing.T) {
	src := `package p

func mayTaint(c bool) []byte {
	x := make([]byte, 1) // taint
	x = make([]byte, 2) // clean
	if c {
		x = make([]byte, 1) // taint
	}
	return x
}
`
	fd, info, _ := parseFunc(t, src, "mayTaint")
	g := BuildCFG(fd.Body)

	// taint = assignments whose RHS ends in the comment-free marker:
	// we tag by the make() size literal (1 = taint, 2 = clean).
	transfer := func(st FlowState, n ast.Node) {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return
		}
		id, ok := a.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		call, ok := a.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		lit, ok := call.Args[1].(*ast.BasicLit)
		if !ok {
			return
		}
		st.set(obj, Fact{Pooled: lit.Value == "1"})
	}
	in := ForwardFlow(g, FlowState{}, transfer)

	// Find the block holding the return statement and replay to it.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			st := in[b].clone()
			// No other nodes precede the return in its block here.
			id := ret.Results[0].(*ast.Ident)
			obj := info.Uses[id]
			if !st[obj].Pooled {
				t.Error("fact killed at the join: branch re-taint lost")
			}
		}
	}

	// Same function without the branch: the strong update must kill.
	src2 := `package p

func clean() []byte {
	x := make([]byte, 1)
	x = make([]byte, 2)
	return x
}
`
	fd2, info2, _ := parseFunc(t, src2, "clean")
	g2 := BuildCFG(fd2.Body)
	in2 := ForwardFlow(g2, FlowState{}, func(st FlowState, n ast.Node) {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		id := a.Lhs[0].(*ast.Ident)
		obj := info2.Defs[id]
		if obj == nil {
			obj = info2.Uses[id]
		}
		call := a.Rhs[0].(*ast.CallExpr)
		lit := call.Args[1].(*ast.BasicLit)
		st.set(obj, Fact{Pooled: lit.Value == "1"})
	})
	for _, b := range g2.Blocks {
		st := in2[b]
		if st == nil {
			continue
		}
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				id := ret.Results[0].(*ast.Ident)
				if st[info2.Uses[id]].Pooled {
					t.Error("strong update did not kill the fact")
				}
			}
		}
	}
}
