package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// TestCallGraphCalleesFirst loads the fixture module and checks the
// SCC order contract: when a function is processed, every callee
// outside its own component has already been emitted.
func TestCallGraphCalleesFirst(t *testing.T) {
	prog, err := Load("testdata/src/fixture", "fixture")
	if err != nil {
		t.Fatal(err)
	}
	cg := buildCallGraph(prog)
	if len(cg.decls) == 0 {
		t.Fatal("empty call graph")
	}
	for fn, callees := range cg.callees {
		for _, callee := range callees {
			if cg.sccOf[callee] > cg.sccOf[fn] {
				t.Errorf("callee %s (scc %d) emitted after caller %s (scc %d)",
					callee.Name(), cg.sccOf[callee], fn.Name(), cg.sccOf[fn])
			}
		}
	}
	// The laundering chains the passes rely on must be edges.
	wantEdge := func(caller, callee string) {
		t.Helper()
		for fn, callees := range cg.callees {
			if fn.Name() != caller {
				continue
			}
			for _, c := range callees {
				if c.Name() == callee {
					return
				}
			}
		}
		t.Errorf("missing call edge %s -> %s", caller, callee)
	}
	wantEdge("touch", "initPeers")
	wantEdge("viaWrapper", "lockedHelper")
}

// TestTransClosurePropagatesChain checks that a fact travels a full
// summaryDepth-hop chain: f0 calls f1 calls ... and only the last
// function carries the direct fact.
func TestTransClosurePropagatesChain(t *testing.T) {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fns := make([]*types.Func, summaryDepth+1)
	for i := range fns {
		fns[i] = types.NewFunc(token.NoPos, nil, "f", sig)
	}
	edges := map[*types.Func][]*types.Func{}
	for i := 0; i+1 < len(fns); i++ {
		edges[fns[i]] = []*types.Func{fns[i+1]}
	}
	lock := types.NewVar(token.NoPos, nil, "mu", types.Typ[types.Int])
	direct := map[*types.Func]map[types.Object]token.Pos{
		fns[len(fns)-1]: {lock: token.Pos(7)},
	}
	out := transClosure(edges, direct)
	if pos, ok := out[fns[0]][lock]; !ok || pos != token.Pos(7) {
		t.Fatalf("fact did not reach the chain head: %v (ok=%v)", pos, ok)
	}
	bout := transClosureBool(edges, map[*types.Func]token.Pos{fns[len(fns)-1]: 7})
	if pos, ok := bout[fns[0]]; !ok || pos != 7 {
		t.Fatalf("bool fact did not reach the chain head: %v (ok=%v)", pos, ok)
	}
}
