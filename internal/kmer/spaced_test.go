package kmer

import (
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/dna"
)

func TestNewSpacedCoderValidation(t *testing.T) {
	bad := []string{
		"",
		"0",
		"01",
		"10",
		"1x1",
		"11111111111111111", // weight 17 > MaxK
	}
	for _, mask := range bad {
		if _, err := NewSpacedCoder(mask); err == nil {
			t.Errorf("mask %q accepted", mask)
		}
	}
	good := []string{"1", "11", "101", "1110100101", "111010010100110111"}
	for _, mask := range good {
		c, err := NewSpacedCoder(mask)
		if err != nil {
			t.Errorf("mask %q rejected: %v", mask, err)
			continue
		}
		if c.Mask() != mask {
			t.Errorf("mask round trip %q → %q", mask, c.Mask())
		}
		if c.Span() != len(mask) {
			t.Errorf("mask %q span = %d", mask, c.Span())
		}
	}
}

func TestAllOnesMaskEqualsContiguous(t *testing.T) {
	spaced, err := NewSpacedCoder("11111")
	if err != nil {
		t.Fatal(err)
	}
	contiguous := MustCoder(5)
	if spaced.Spaced() {
		t.Error("all-ones mask marked spaced")
	}
	rng := rand.New(rand.NewSource(201))
	seq := make([]byte, 100)
	for i := range seq {
		seq[i] = byte(rng.Intn(dna.NumBases))
	}
	a := spaced.Extract(nil, seq)
	b := contiguous.Extract(nil, seq)
	if !reflect.DeepEqual(a, b) {
		t.Error("all-ones mask extraction differs from contiguous")
	}
}

func TestSpacedEncodeSamplesMaskPositions(t *testing.T) {
	c, err := NewSpacedCoder("101")
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 || c.Span() != 3 {
		t.Fatalf("weight/span = %d/%d", c.K(), c.Span())
	}
	// ACG samples A and G; the middle C is ignored.
	got := c.Encode(dna.MustEncode("ACG"))
	want := MustCoder(2).Encode(dna.MustEncode("AG"))
	if got != want {
		t.Errorf("Encode(ACG) = %v, want %v", got, want)
	}
	// Changing the ignored position does not change the term.
	if c.Encode(dna.MustEncode("ATG")) != got {
		t.Error("ignored position affected the term")
	}
	// Changing a sampled position does.
	if c.Encode(dna.MustEncode("CCG")) == got {
		t.Error("sampled position did not affect the term")
	}
}

func TestSpacedExtractPositions(t *testing.T) {
	c, err := NewSpacedCoder("1001")
	if err != nil {
		t.Fatal(err)
	}
	seq := dna.MustEncode("ACGTAC")
	var positions []int
	var terms []Term
	c.ExtractFunc(seq, func(pos int, tm Term) {
		positions = append(positions, pos)
		terms = append(terms, tm)
	})
	if !reflect.DeepEqual(positions, []int{0, 1, 2}) {
		t.Errorf("positions = %v", positions)
	}
	// Window at 0 is ACGT sampling A,T.
	if terms[0] != MustCoder(2).Encode(dna.MustEncode("AT")) {
		t.Errorf("term 0 wrong")
	}
	// Short sequences yield nothing.
	if got := c.Extract(nil, dna.MustEncode("ACG")); len(got) != 0 {
		t.Errorf("short sequence extracted %v", got)
	}
}

func TestSpacedSeedSensitivity(t *testing.T) {
	// The PatternHunter claim, at seed level: for homologous regions at
	// substantial divergence, a spaced seed of equal weight hits (≥1
	// surviving shared seed) more often than the contiguous seed.
	rng := rand.New(rand.NewSource(202))
	contiguous := MustCoder(11)
	spaced, err := NewSpacedCoder("111010010100110111") // PatternHunter weight-11 mask
	if err != nil {
		t.Fatal(err)
	}
	const trials = 400
	const regionLen = 64
	const divergence = 0.15
	hitRate := func(c *Coder) float64 {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			local := rand.New(rand.NewSource(int64(trial)*7919 + 13))
			a := make([]byte, regionLen)
			for i := range a {
				a[i] = byte(local.Intn(dna.NumBases))
			}
			b := append([]byte{}, a...)
			for i := range b {
				if local.Float64() < divergence {
					nb := byte(local.Intn(dna.NumBases - 1))
					if nb >= b[i] {
						nb++
					}
					b[i] = nb
				}
			}
			aTerms := map[Term][]int{}
			c.ExtractFunc(a, func(pos int, tm Term) { aTerms[tm] = append(aTerms[tm], pos) })
			hit := false
			c.ExtractFunc(b, func(pos int, tm Term) {
				// A true homologous hit sits on the zero diagonal.
				for _, ap := range aTerms[tm] {
					if ap == pos {
						hit = true
					}
				}
			})
			if hit {
				hits++
			}
		}
		return float64(hits) / trials
	}
	rc := hitRate(contiguous)
	rs := hitRate(spaced)
	_ = rng
	if rs <= rc {
		t.Errorf("spaced sensitivity %.3f not above contiguous %.3f at %.0f%% divergence",
			rs, rc, divergence*100)
	}
}
