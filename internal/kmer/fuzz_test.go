package kmer

import (
	"testing"

	"nucleodb/internal/dna"
)

// FuzzKmerRoundtrip checks the rolling extractor against the direct
// per-window encoder on arbitrary sequences: every interval term the
// rolling hash produces must equal Encode of the window it claims to
// cover, terms must decode back to the canonicalised window, and the
// spaced coder must agree with a naive reimplementation of its mask.
func FuzzKmerRoundtrip(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0, 1, 2, 3}, uint8(4))
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 3, 2, 1, 0}, uint8(3))
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3}, uint8(8))
	f.Add([]byte{0, 14, 1, 7, 2, 9, 3}, uint8(2)) // wildcards interleaved
	f.Add([]byte{200, 0, 1}, uint8(2))            // invalid codes get clamped below

	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		k := int(kRaw)%MaxK + 1
		// Clamp raw bytes into valid code space: extraction is defined
		// over code-form sequences only.
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b % dna.NumCodes
		}
		c, err := NewCoder(k)
		if err != nil {
			t.Fatal(err)
		}

		want := c.NumIntervals(len(codes))
		seen := 0
		c.ExtractFunc(codes, func(pos int, term Term) {
			if pos != seen {
				t.Fatalf("interval %d reported at position %d", seen, pos)
			}
			if direct := c.Encode(codes[pos:]); direct != term {
				t.Fatalf("position %d: rolling term %d, direct encode %d", pos, term, direct)
			}
			decoded := c.Decode(term)
			for j, d := range decoded {
				wantCode := dna.CanonicalBase(codes[pos+j])
				if d != wantCode {
					t.Fatalf("position %d base %d: decoded %d, canonical %d", pos, j, d, wantCode)
				}
			}
			seen++
		})
		if seen != want {
			t.Fatalf("extracted %d intervals, NumIntervals says %d", seen, want)
		}

		// Spaced coder vs a naive reimplementation, reusing the fuzzed
		// weight as every-other-position mask of weight k.
		mask := make([]byte, 0, 2*k-1)
		for i := 0; i < k; i++ {
			if i > 0 {
				mask = append(mask, '0')
			}
			mask = append(mask, '1')
		}
		sc, err := NewSpacedCoder(string(mask))
		if err != nil {
			t.Fatal(err)
		}
		seen = 0
		sc.ExtractFunc(codes, func(pos int, term Term) {
			var naive uint64
			for p := 0; p < len(mask); p++ {
				if mask[p] != '1' {
					continue
				}
				naive = naive<<2 | uint64(dna.CanonicalBase(codes[pos+p]))
			}
			if Term(naive) != term {
				t.Fatalf("spaced position %d: coder %d, naive %d", pos, term, naive)
			}
			seen++
		})
		if want := sc.NumIntervals(len(codes)); seen != want {
			t.Fatalf("spaced extracted %d intervals, NumIntervals says %d", seen, want)
		}
	})
}
