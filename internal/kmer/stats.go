package kmer

import "sort"

// Stats accumulates collection-level interval frequencies. The index
// builder uses it to size posting lists, and index stopping uses it to
// find the most frequent intervals to discard.
type Stats struct {
	coder *Coder
	count []uint32 // occurrences per term; 4^k entries
	total uint64
}

type statsEntry struct {
	Term  Term
	Count uint32
}

// NewStats returns a zeroed accumulator over the coder's vocabulary.
// Memory is 4 bytes × 4^k, so interval lengths up to about 13 are
// practical for in-memory statistics.
func NewStats(c *Coder) *Stats {
	return &Stats{coder: c, count: make([]uint32, c.NumTerms())}
}

// Add accumulates every interval of the sequence.
func (s *Stats) Add(codes []byte) {
	s.coder.ExtractFunc(codes, func(_ int, t Term) {
		s.count[t]++
		s.total++
	})
}

// Count returns the number of occurrences of term t.
func (s *Stats) Count(t Term) uint32 { return s.count[t] }

// Total returns the total number of interval occurrences accumulated.
func (s *Stats) Total() uint64 { return s.total }

// Distinct returns the number of distinct terms seen at least once.
func (s *Stats) Distinct() int {
	n := 0
	for _, c := range s.count {
		if c > 0 {
			n++
		}
	}
	return n
}

// TopFraction returns the set of the most frequent terms whose combined
// occurrence mass is smallest while covering at least the given fraction
// of terms by count rank — i.e. the top f of distinct terms by
// frequency. It is the stopping set: the index discards these terms.
// The fraction is of distinct terms, clamped to [0,1].
func (s *Stats) TopFraction(f float64) map[Term]bool {
	if f <= 0 {
		return map[Term]bool{}
	}
	if f > 1 {
		f = 1
	}
	entries := make([]statsEntry, 0, 1024)
	for t, c := range s.count {
		if c > 0 {
			entries = append(entries, statsEntry{Term(t), c})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Term < entries[j].Term
	})
	n := int(f * float64(len(entries)))
	if n == 0 && f > 0 && len(entries) > 0 {
		n = 1
	}
	stop := make(map[Term]bool, n)
	for _, e := range entries[:n] {
		stop[e.Term] = true
	}
	return stop
}
