package kmer

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nucleodb/internal/dna"
)

func TestNewCoderBounds(t *testing.T) {
	for _, k := range []int{0, -1, MaxK + 1} {
		if _, err := NewCoder(k); err == nil {
			t.Errorf("NewCoder(%d) accepted", k)
		}
	}
	for _, k := range []int{1, 8, MaxK} {
		if _, err := NewCoder(k); err != nil {
			t.Errorf("NewCoder(%d): %v", k, err)
		}
	}
}

func TestEncodeDecodeTerm(t *testing.T) {
	c := MustCoder(4)
	for _, s := range []string{"AAAA", "ACGT", "TTTT", "GGCC"} {
		term := c.Encode(dna.MustEncode(s))
		if got := c.String(term); got != s {
			t.Errorf("term round trip %s = %s", s, got)
		}
	}
}

func TestEncodeOrderMatchesStringOrder(t *testing.T) {
	c := MustCoder(3)
	if c.Encode(dna.MustEncode("AAA")) >= c.Encode(dna.MustEncode("AAC")) {
		t.Error("AAA term not less than AAC")
	}
	if c.Encode(dna.MustEncode("ACG")) >= c.Encode(dna.MustEncode("CAA")) {
		t.Error("ACG term not less than CAA")
	}
}

func TestEncodeCanonicalisesWildcards(t *testing.T) {
	c := MustCoder(4)
	// N canonicalises to A.
	if c.Encode(dna.MustEncode("ANGT")) != c.Encode(dna.MustEncode("AAGT")) {
		t.Error("wildcard canonicalisation mismatch")
	}
}

func TestExtract(t *testing.T) {
	c := MustCoder(3)
	seq := dna.MustEncode("ACGTA")
	terms := c.Extract(nil, seq)
	want := []Term{
		c.Encode(dna.MustEncode("ACG")),
		c.Encode(dna.MustEncode("CGT")),
		c.Encode(dna.MustEncode("GTA")),
	}
	if !reflect.DeepEqual(terms, want) {
		t.Errorf("Extract = %v, want %v", terms, want)
	}
}

func TestExtractShortSequence(t *testing.T) {
	c := MustCoder(5)
	if got := c.Extract(nil, dna.MustEncode("ACGT")); len(got) != 0 {
		t.Errorf("Extract on short sequence = %v", got)
	}
	c.ExtractFunc(dna.MustEncode("ACGT"), func(int, Term) {
		t.Error("ExtractFunc callback on short sequence")
	})
}

func TestExtractFuncPositions(t *testing.T) {
	c := MustCoder(2)
	seq := dna.MustEncode("ACGT")
	var positions []int
	var terms []Term
	c.ExtractFunc(seq, func(pos int, tm Term) {
		positions = append(positions, pos)
		terms = append(terms, tm)
	})
	if !reflect.DeepEqual(positions, []int{0, 1, 2}) {
		t.Errorf("positions = %v", positions)
	}
	if !reflect.DeepEqual(terms, c.Extract(nil, seq)) {
		t.Errorf("ExtractFunc terms disagree with Extract")
	}
}

func TestExtractMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range []int{1, 2, 3, 8, 12} {
		c := MustCoder(k)
		seq := make([]byte, 200)
		for i := range seq {
			seq[i] = byte(rng.Intn(dna.NumBases))
		}
		rolling := c.Extract(nil, seq)
		var naive []Term
		for i := 0; i+k <= len(seq); i++ {
			naive = append(naive, c.Encode(seq[i:i+k]))
		}
		if !reflect.DeepEqual(rolling, naive) {
			t.Errorf("k=%d rolling extraction disagrees with naive", k)
		}
	}
}

func TestNumIntervals(t *testing.T) {
	c := MustCoder(9)
	cases := map[int]int{0: 0, 8: 0, 9: 1, 10: 2, 100: 92}
	for length, want := range cases {
		if got := c.NumIntervals(length); got != want {
			t.Errorf("NumIntervals(%d) = %d, want %d", length, got, want)
		}
	}
}

func TestNumTerms(t *testing.T) {
	if got := MustCoder(3).NumTerms(); got != 64 {
		t.Errorf("NumTerms(3) = %d, want 64", got)
	}
}

func TestPropertyTermRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(kseed uint8) bool {
		k := 1 + int(kseed)%MaxK
		c := MustCoder(k)
		seq := make([]byte, k)
		for i := range seq {
			seq[i] = byte(rng.Intn(dna.NumBases))
		}
		term := c.Encode(seq)
		return reflect.DeepEqual(c.Decode(term), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
