// Package kmer implements fixed-length substrings — the paper's
// "intervals" — as the indexing vocabulary: encoding an interval of n
// bases into an integer term, rolling extraction over a sequence, and
// collection-level interval statistics used to size the index and to
// choose stopping thresholds.
package kmer

import (
	"fmt"

	"nucleodb/internal/dna"
)

// MaxK is the longest supported interval: 2 bits per base must fit in a
// uint64 term with room left to avoid overflowing the lexicon array.
const MaxK = 16

// Term is an integer-encoded interval: k bases packed 2 bits each, first
// base in the most significant position so that terms sort in the same
// order as the strings they encode.
type Term uint64

// Coder encodes and enumerates intervals: k sampled positions within a
// window of span bases. Contiguous coders (the paper's intervals) have
// span == k; spaced coders (see NewSpacedCoder) sample a subset of a
// longer window.
type Coder struct {
	k      int
	span   int
	sample []int // sampled window offsets; nil for contiguous
	mask   uint64
}

// NewCoder returns a coder for contiguous intervals of length k,
// 1 ≤ k ≤ MaxK.
func NewCoder(k int) (*Coder, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("kmer: interval length %d outside [1,%d]", k, MaxK)
	}
	return &Coder{k: k, span: k, mask: (1 << uint(2*k)) - 1}, nil
}

// MustCoder is NewCoder for static configuration; it panics on error.
func MustCoder(k int) *Coder {
	c, err := NewCoder(k)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the interval weight: the number of sampled bases, which is
// the interval length for contiguous coders.
func (c *Coder) K() int { return c.k }

// NumTerms returns the size of the interval vocabulary, 4^k.
func (c *Coder) NumTerms() uint64 { return 1 << uint(2*c.k) }

// Encode packs the first window of codes into a Term (the sampled
// positions for spaced coders). Wildcards are canonicalised to a base;
// the same rule is applied at query time so the coarse phase stays
// consistent. It panics if codes is shorter than the window span.
//
//cafe:hotpath
func (c *Coder) Encode(codes []byte) Term {
	if len(codes) < c.span {
		panic(fmt.Sprintf("kmer: encode needs %d bases, have %d", c.span, len(codes)))
	}
	if c.sample != nil {
		return c.encodeSpaced(codes, 0)
	}
	var t uint64
	for _, b := range codes[:c.k] {
		if !dna.IsBase(b) {
			b = dna.CanonicalBase(b)
		}
		t = t<<2 | uint64(b)
	}
	return Term(t)
}

// Decode expands a term back into k base codes.
func (c *Coder) Decode(t Term) []byte {
	codes := make([]byte, c.k)
	v := uint64(t)
	for i := c.k - 1; i >= 0; i-- {
		codes[i] = byte(v & 3)
		v >>= 2
	}
	return codes
}

// String renders a term as its k-letter string, for diagnostics.
func (c *Coder) String(t Term) string { return dna.String(c.Decode(t)) }

// Extract appends the term of every overlapping interval of the
// sequence to dst, in sequence order, and returns the extended slice.
// A sequence shorter than the window span yields no intervals.
func (c *Coder) Extract(dst []Term, codes []byte) []Term {
	c.ExtractFunc(codes, func(_ int, t Term) { dst = append(dst, t) })
	return dst
}

// ExtractFunc calls fn(position, term) for every overlapping interval,
// where position is the offset of the interval window's first base. It
// avoids materialising the term slice on the indexing hot path.
//
//cafe:hotpath
func (c *Coder) ExtractFunc(codes []byte, fn func(pos int, t Term)) {
	if len(codes) < c.span {
		return
	}
	if c.sample != nil {
		for at := 0; at+c.span <= len(codes); at++ {
			fn(at, c.encodeSpaced(codes, at))
		}
		return
	}
	// Contiguous fast path: rolling encode, one shift per base.
	var t uint64
	for i, b := range codes {
		if !dna.IsBase(b) {
			b = dna.CanonicalBase(b)
		}
		t = (t<<2 | uint64(b)) & c.mask
		if i >= c.k-1 {
			fn(i-c.k+1, Term(t))
		}
	}
}

// NumIntervals returns the number of overlapping interval windows in a
// sequence of the given length: max(0, length−span+1).
func (c *Coder) NumIntervals(length int) int {
	if length < c.span {
		return 0
	}
	return length - c.span + 1
}
