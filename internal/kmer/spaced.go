package kmer

import (
	"fmt"
	"strings"

	"nucleodb/internal/dna"
)

// Spaced seeds (PatternHunter, Ma–Tromp–Li 2002): instead of sampling
// k contiguous bases, a seed samples the '1' positions of a mask like
// 1110100101. At equal weight (number of sampled positions, hence
// equal vocabulary and similar index size) spaced seeds are more
// sensitive to diverged homologies than contiguous ones, because
// overlapping windows share fewer sampled positions and their hit
// events are less correlated. The citing literature applies exactly
// this refinement to interval indexes like this system's.

// NewSpacedCoder returns a coder sampling the '1' positions of mask.
// The mask must start and end with '1' (otherwise it is equivalent to
// a shorter mask), contain only '0' and '1', and have weight ≤ MaxK.
// A mask of all ones is exactly the contiguous coder of that length.
func NewSpacedCoder(mask string) (*Coder, error) {
	if len(mask) == 0 {
		return nil, fmt.Errorf("kmer: empty spaced mask")
	}
	if mask[0] != '1' || mask[len(mask)-1] != '1' {
		return nil, fmt.Errorf("kmer: spaced mask %q must start and end with '1'", mask)
	}
	var sample []int
	for i := 0; i < len(mask); i++ {
		switch mask[i] {
		case '1':
			sample = append(sample, i)
		case '0':
		default:
			return nil, fmt.Errorf("kmer: spaced mask %q has invalid character %q", mask, mask[i])
		}
	}
	w := len(sample)
	if w < 1 || w > MaxK {
		return nil, fmt.Errorf("kmer: spaced mask weight %d outside [1,%d]", w, MaxK)
	}
	c := &Coder{k: w, span: len(mask), mask: (1 << uint(2*w)) - 1}
	if len(mask) > w {
		c.sample = sample
	}
	return c, nil
}

// Mask returns the coder's mask string: all ones for a contiguous
// coder.
func (c *Coder) Mask() string {
	if c.sample == nil {
		return strings.Repeat("1", c.k)
	}
	mask := make([]byte, c.span)
	for i := range mask {
		mask[i] = '0'
	}
	for _, p := range c.sample {
		mask[p] = '1'
	}
	return string(mask)
}

// Spaced reports whether the coder samples non-contiguous positions.
func (c *Coder) Spaced() bool { return c.sample != nil }

// Span returns the window length an interval occupies in the sequence:
// equal to K for contiguous coders, the mask length for spaced ones.
func (c *Coder) Span() int { return c.span }

// encodeSpaced packs the sampled positions of the window starting at
// codes[at].
//
//cafe:hotpath
func (c *Coder) encodeSpaced(codes []byte, at int) Term {
	var t uint64
	for _, p := range c.sample {
		b := codes[at+p]
		if !dna.IsBase(b) {
			b = dna.CanonicalBase(b)
		}
		t = t<<2 | uint64(b)
	}
	return Term(t)
}
