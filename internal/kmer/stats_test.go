package kmer

import (
	"testing"

	"nucleodb/internal/dna"
)

func TestStatsCounts(t *testing.T) {
	c := MustCoder(2)
	s := NewStats(c)
	s.Add(dna.MustEncode("AAAA")) // AA ×3
	s.Add(dna.MustEncode("ACAC")) // AC, CA, AC

	if got := s.Count(c.Encode(dna.MustEncode("AA"))); got != 3 {
		t.Errorf("count(AA) = %d, want 3", got)
	}
	if got := s.Count(c.Encode(dna.MustEncode("AC"))); got != 2 {
		t.Errorf("count(AC) = %d, want 2", got)
	}
	if got := s.Count(c.Encode(dna.MustEncode("GG"))); got != 0 {
		t.Errorf("count(GG) = %d, want 0", got)
	}
	if s.Total() != 6 {
		t.Errorf("total = %d, want 6", s.Total())
	}
	if s.Distinct() != 3 {
		t.Errorf("distinct = %d, want 3", s.Distinct())
	}
}

func TestTopFraction(t *testing.T) {
	c := MustCoder(2)
	s := NewStats(c)
	s.Add(dna.MustEncode("AAAAAAAA")) // AA ×7 — the clear top term
	s.Add(dna.MustEncode("ACGT"))     // AC, CG, GT once each

	stop := s.TopFraction(0.25) // 1 of 4 distinct terms
	if len(stop) != 1 {
		t.Fatalf("stop set size = %d, want 1", len(stop))
	}
	if !stop[c.Encode(dna.MustEncode("AA"))] {
		t.Error("top term is not AA")
	}

	if got := s.TopFraction(0); len(got) != 0 {
		t.Errorf("TopFraction(0) = %v", got)
	}
	if got := s.TopFraction(1); len(got) != 4 {
		t.Errorf("TopFraction(1) size = %d, want 4", len(got))
	}
	if got := s.TopFraction(2); len(got) != 4 { // clamped
		t.Errorf("TopFraction(2) size = %d, want 4", len(got))
	}
}

func TestTopFractionTinyNonZero(t *testing.T) {
	c := MustCoder(2)
	s := NewStats(c)
	s.Add(dna.MustEncode("ACGT"))
	// A tiny positive fraction still stops at least one term.
	if got := s.TopFraction(1e-9); len(got) != 1 {
		t.Errorf("TopFraction(ε) size = %d, want 1", len(got))
	}
}

func TestTopFractionEmptyStats(t *testing.T) {
	s := NewStats(MustCoder(2))
	if got := s.TopFraction(0.5); len(got) != 0 {
		t.Errorf("TopFraction on empty stats = %v", got)
	}
}
