package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

// testDB builds a small deterministic database with homologous
// families, so queries drawn from records have real answers.
func testDB(t *testing.T) *nucleodb.Database {
	t.Helper()
	col, err := gen.Generate(gen.DefaultConfig(80, 42))
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]nucleodb.Record, len(col.Records))
	for i, r := range col.Records {
		recs[i] = nucleodb.Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
	}
	db, err := nucleodb.Build(recs, nucleodb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// testQueries derives nq fragment queries from the database.
func testQueries(db *nucleodb.Database, nq int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	queries := make([]string, 0, nq)
	for len(queries) < nq {
		seq := db.Sequence(rng.Intn(db.NumSequences()))
		if len(seq) < 120 {
			continue
		}
		start := rng.Intn(len(seq) - 100)
		queries = append(queries, seq[start:start+100])
	}
	return queries
}

func newTestServer(t *testing.T, db *nucleodb.Database, mutate func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 8
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func post(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// TestSearchMatchesLibrary: /search returns exactly the hits the
// library Search returns, via both GET and POST.
func TestSearchMatchesLibrary(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, nil)
	for i, q := range testQueries(db, 4, 1) {
		want, err := db.Search(q, nucleodb.DefaultSearchOptions())
		if err != nil {
			t.Fatal(err)
		}
		rec, body := get(t, s.Handler(), "/search?q="+q)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, rec.Code, body)
		}
		var resp SearchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(resp.Results) != len(want) {
			t.Fatalf("query %d: %d hits via HTTP, %d via library", i, len(resp.Results), len(want))
		}
		for k, h := range resp.Results {
			if h.ID != want[k].ID || h.Score != want[k].Score || h.Desc != want[k].Desc {
				t.Fatalf("query %d hit %d: got %+v want %+v", i, k, h, want[k])
			}
		}
		recP, bodyP := post(t, s.Handler(), "/search", searchRequest{Query: q})
		if recP.Code != http.StatusOK || !bytes.Equal(bodyP, body) {
			t.Fatalf("query %d: POST diverged from GET (%d):\n%s\nvs\n%s", i, recP.Code, bodyP, body)
		}
	}
}

// TestCacheHitIdenticalBody: the second identical request is served
// from cache with a byte-identical body and the hit header.
func TestCacheHitIdenticalBody(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, nil)
	q := testQueries(db, 1, 2)[0]
	rec1, body1 := get(t, s.Handler(), "/search?q="+q)
	rec2, body2 := get(t, s.Handler(), "/search?q="+q)
	if rec1.Header().Get("X-Cafe-Cache") != "miss" || rec2.Header().Get("X-Cafe-Cache") != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit",
			rec1.Header().Get("X-Cafe-Cache"), rec2.Header().Get("X-Cafe-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached body diverged:\n%s\nvs\n%s", body1, body2)
	}
	// Case-normalisation: the lowercased query is the same cache entry.
	rec3, body3 := get(t, s.Handler(), "/search?q="+strings.ToLower(q))
	if rec3.Header().Get("X-Cafe-Cache") != "hit" || !bytes.Equal(body1, body3) {
		t.Fatalf("lowercased query missed the cache (header %q)", rec3.Header().Get("X-Cafe-Cache"))
	}
	if cs := s.CacheStats(); cs.Hits != 2 || cs.Misses != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 2 hits / 1 miss / 1 entry", cs)
	}
}

// TestWriteBodyLeavesBackingUntouched is the regression test for the
// cached-body race: writeBody used to append the trailing newline into
// the caller's slice, scribbling on spare capacity that on a cache hit
// belongs to an entry shared across concurrent requests.
func TestWriteBodyLeavesBackingUntouched(t *testing.T) {
	backing := make([]byte, 8, 16)
	copy(backing, `{"ok":1}`)
	spare := backing[8:16:16]
	for i := range spare {
		spare[i] = 0xAA
	}
	rec := httptest.NewRecorder()
	writeBody(rec, http.StatusOK, backing[:8])
	if got := rec.Body.String(); got != `{"ok":1}`+"\n" {
		t.Fatalf("response body = %q, want body plus newline", got)
	}
	for i, b := range spare {
		if b != 0xAA {
			t.Fatalf("writeBody scribbled on spare capacity at byte %d: 0x%02X", i, b)
		}
	}
}

// TestCacheOnOffEquivalence is the cache property test: for random
// queries in random order with repeats, a cache-enabled server and a
// cache-disabled server return byte-identical bodies.
func TestCacheOnOffEquivalence(t *testing.T) {
	db := testDB(t)
	cached := newTestServer(t, db, nil)
	uncached := newTestServer(t, db, func(c *Config) { c.CacheSize = 0 })
	rng := rand.New(rand.NewSource(7))
	queries := testQueries(db, 6, 3)
	for i := 0; i < 40; i++ {
		q := queries[rng.Intn(len(queries))]
		path := "/search?q=" + q
		if rng.Intn(2) == 0 {
			path += "&limit=5"
		}
		recA, bodyA := get(t, cached.Handler(), path)
		recB, bodyB := get(t, uncached.Handler(), path)
		if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
			t.Fatalf("request %d: status %d vs %d", i, recA.Code, recB.Code)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("request %d (%s): cached body diverged from uncached:\n%s\nvs\n%s", i, path, bodyA, bodyB)
		}
	}
	if cs := cached.CacheStats(); cs.Hits == 0 {
		t.Fatal("cache property test never hit the cache")
	}
	if cs := uncached.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", cs)
	}
}

// TestTimeoutReturns504: a request with timeout=1ns returns 504 and
// does not wedge a worker — the same server answers normally after.
func TestTimeoutReturns504(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(c *Config) { c.Workers = 1 })
	q := testQueries(db, 1, 4)[0]
	rec, body := get(t, s.Handler(), "/search?q="+q+"&timeout=1ns&nocache=1")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("504 body not an error JSON: %s", body)
	}
	// The single worker must be free again.
	rec2, body2 := get(t, s.Handler(), "/search?q="+q)
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-timeout request failed (%d): %s — worker wedged?", rec2.Code, body2)
	}
}

// TestQueueFullSheds429: with every worker busy and the queue full,
// new requests shed immediately with 429 and a Retry-After header.
func TestQueueFullSheds429(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(c *Config) { c.Workers = 1; c.QueueDepth = 0 })
	q := testQueries(db, 1, 5)[0]
	s.slots <- struct{}{} // occupy the only worker
	defer func() { <-s.slots }()
	rec, body := get(t, s.Handler(), "/search?q="+q+"&nocache=1")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestQueuedRequestHonoursDeadline: a request waiting for a worker
// still times out with 504 when its deadline passes in the queue.
func TestQueuedRequestHonoursDeadline(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(c *Config) { c.Workers = 1; c.QueueDepth = 4 })
	q := testQueries(db, 1, 6)[0]
	s.slots <- struct{}{} // occupy the only worker for the duration
	defer func() { <-s.slots }()
	start := time.Now()
	rec, body := get(t, s.Handler(), "/search?q="+q+"&timeout=50ms&nocache=1")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, body)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("queued request took %v to fail", waited)
	}
}

// TestBatchMatchesLibrary: /batch returns what SearchBatch returns.
func TestBatchMatchesLibrary(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, nil)
	queries := testQueries(db, 3, 8)
	want, err := db.SearchBatch(queries, nucleodb.DefaultSearchOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, body := post(t, s.Handler(), "/batch", map[string]any{"queries": queries})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("%d lists, want %d", len(resp.Results), len(want))
	}
	for i, hits := range resp.Results {
		if len(hits) != len(want[i]) {
			t.Fatalf("query %d: %d hits via HTTP, %d via library", i, len(hits), len(want[i]))
		}
		for k, h := range hits {
			if h.ID != want[i][k].ID || h.Score != want[i][k].Score {
				t.Fatalf("query %d hit %d: got %+v want %+v", i, k, h, want[i][k])
			}
		}
	}
}

// TestBadRequests: malformed inputs answer 4xx with an error body, not
// 5xx and not a hang.
func TestBadRequests(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(c *Config) { c.MaxQueryBases = 500; c.MaxBatchQueries = 4 })
	long := strings.Repeat("ACGT", 200)
	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"missing query", func() *httptest.ResponseRecorder { r, _ := get(t, s.Handler(), "/search"); return r }, 400},
		{"bad letters", func() *httptest.ResponseRecorder { r, _ := get(t, s.Handler(), "/search?q=ACGT!!"); return r }, 400},
		{"bad timeout", func() *httptest.ResponseRecorder {
			r, _ := get(t, s.Handler(), "/search?q=ACGTACGTACGTACGT&timeout=banana")
			return r
		}, 400},
		{"negative timeout", func() *httptest.ResponseRecorder {
			r, _ := get(t, s.Handler(), "/search?q=ACGTACGTACGTACGT&timeout=-1s")
			return r
		}, 400},
		{"bad option", func() *httptest.ResponseRecorder {
			r, _ := get(t, s.Handler(), "/search?q=ACGTACGTACGTACGT&limit=banana")
			return r
		}, 400},
		{"oversized query", func() *httptest.ResponseRecorder { r, _ := get(t, s.Handler(), "/search?q="+long); return r }, 413},
		{"unknown JSON field", func() *httptest.ResponseRecorder {
			r, _ := post(t, s.Handler(), "/search", map[string]any{"query": "ACGTACGTACGTACGT", "bogus": 1})
			return r
		}, 400},
		{"batch without queries", func() *httptest.ResponseRecorder {
			r, _ := post(t, s.Handler(), "/batch", map[string]any{})
			return r
		}, 400},
		{"oversized batch", func() *httptest.ResponseRecorder {
			r, _ := post(t, s.Handler(), "/batch", map[string]any{"queries": []string{"A", "A", "A", "A", "A"}})
			return r
		}, 413},
		{"batch via GET", func() *httptest.ResponseRecorder { r, _ := get(t, s.Handler(), "/batch"); return r }, 405},
	}
	for _, tc := range cases {
		rec := tc.do()
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		var er errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Errorf("%s: body is not an error JSON: %s", tc.name, rec.Body.String())
		}
	}
}

// TestHealthzAndMetrics: the operational endpoints answer with
// well-formed JSON.
func TestHealthzAndMetrics(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, nil)
	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var h healthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sequences != db.NumSequences() || h.Bases != db.TotalBases() {
		t.Fatalf("healthz = %+v", h)
	}
	get(t, s.Handler(), "/search?q="+testQueries(db, 1, 9)[0])
	rec, body = get(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"server_requests_total", "searches_total"} {
		if snap.Counters[key] <= 0 {
			t.Fatalf("counter %s = %d, want > 0", key, snap.Counters[key])
		}
	}
	if _, ok := snap.Histograms["server_request_latency"]; !ok {
		t.Fatal("metrics missing server_request_latency histogram")
	}
}

// TestHammerDuringShutdown fires overlapping /search and /batch
// requests at a live listener while the server drains: every response
// must be a well-formed success or shed/timeout, never a torn body or
// a wedged worker, and Shutdown must complete. Run under -race this is
// the service's concurrency gate.
func TestHammerDuringShutdown(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(c *Config) { c.Workers = 4; c.QueueDepth = 4; c.CacheSize = 64 })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	queries := testQueries(db, 8, 10)

	const clients = 8
	const perClient = 12
	var wg sync.WaitGroup
	errc := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < perClient; i++ {
				var resp *http.Response
				var err error
				if rng.Intn(3) == 0 {
					buf, _ := json.Marshal(map[string]any{"queries": queries[:2]})
					resp, err = client.Post(base+"/batch", "application/json", bytes.NewReader(buf))
				} else {
					resp, err = client.Get(base + "/search?q=" + queries[rng.Intn(len(queries))])
				}
				if err != nil {
					// Connection refused/reset mid-drain is the expected
					// fate of requests that arrive after shutdown.
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errc <- fmt.Errorf("torn body: %w", rerr)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
					if !json.Valid(body) {
						errc <- fmt.Errorf("status %d with invalid JSON: %q", resp.StatusCode, body)
					}
				default:
					errc <- fmt.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}(c)
	}

	// Let the hammer get going, then drain while requests are in
	// flight.
	time.Sleep(50 * time.Millisecond)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
