// Package server exposes a nucleodb database as an HTTP/JSON query
// service: the shape the partitioned-search engine takes in
// production, where one resident database serves many small concurrent
// queries (the workload SEQR and COBS frame indexed sequence search
// around). The server is deliberately boring operationally:
//
//   - GET/POST /search evaluates one query; POST /batch evaluates many;
//   - a bounded worker pool caps concurrent searches, a bounded queue
//     absorbs bursts, and requests beyond both are shed with 429;
//   - every request runs under a context deadline (per-request
//     ?timeout=, capped by the server maximum) and a timed-out search
//     stops at the next posting-list or candidate boundary and returns
//     504 — a worker is never wedged on an abandoned query;
//   - an LRU cache keyed on (canonical query, options) serves repeated
//     queries from memory, with hit/miss counters in /metrics;
//   - /healthz answers liveness probes and /metrics and /debug/vars
//     export the process-wide metrics registry.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/metrics"
)

// Config controls service behaviour. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	// DefaultTimeout bounds a request that names no timeout; MaxTimeout
	// caps whatever the client asks for. Zero DefaultTimeout means
	// requests default to MaxTimeout.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Workers is the number of searches evaluated concurrently;
	// QueueDepth is how many more may wait for a worker before new
	// requests are shed with 429.
	Workers    int
	QueueDepth int
	// CacheSize is the result cache capacity in entries; 0 disables
	// caching.
	CacheSize int
	// MaxQueryBases rejects longer queries with 413; MaxBatchQueries
	// bounds one /batch request.
	MaxQueryBases   int
	MaxBatchQueries int
	// BatchWorkers bounds the per-batch search parallelism (a batch
	// occupies one pool slot; this is its internal fan-out). 0 uses
	// GOMAXPROCS.
	BatchWorkers int
	// Options is the search configuration requests start from; request
	// parameters override individual fields.
	Options nucleodb.SearchOptions
}

// DefaultConfig returns production-leaning defaults sized for one
// resident database on one machine.
func DefaultConfig() Config {
	return Config{
		DefaultTimeout:  2 * time.Second,
		MaxTimeout:      30 * time.Second,
		Workers:         runtime.GOMAXPROCS(0),
		QueueDepth:      64,
		CacheSize:       1024,
		MaxQueryBases:   1 << 20,
		MaxBatchQueries: 256,
		Options:         nucleodb.DefaultSearchOptions(),
	}
}

// Server serves search traffic for one Database. Create with New;
// mount Handler on an http.Server. Graceful drain is the HTTP
// server's: http.Server.Shutdown stops new connections and in-flight
// handlers run to completion (each already bounded by its deadline).
type Server struct {
	db    *nucleodb.Database
	cfg   Config
	cache *resultCache
	mux   *http.ServeMux

	slots  chan struct{}
	queued atomic.Int64

	mRequests    *metrics.Counter
	mShed        *metrics.Counter
	mTimeouts    *metrics.Counter
	mCacheHits   *metrics.Counter
	mCacheMisses *metrics.Counter
	hLatency     *metrics.Histogram
}

// New returns a Server over db. It registers its instruments in the
// process-wide metrics registry and publishes the registry through
// expvar, so /metrics and /debug/vars work out of the box.
func New(db *nucleodb.Database, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("server: Workers %d must be positive", cfg.Workers)
	}
	if cfg.QueueDepth < 0 || cfg.MaxQueryBases <= 0 || cfg.MaxBatchQueries <= 0 {
		return nil, fmt.Errorf("server: invalid config %+v", cfg)
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultConfig().MaxTimeout
	}
	if cfg.DefaultTimeout <= 0 || cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	nucleodb.PublishMetrics()
	reg := metrics.Default()
	s := &Server{
		db:    db,
		cfg:   cfg,
		cache: newResultCache(cfg.CacheSize),
		slots: make(chan struct{}, cfg.Workers),

		mRequests:    reg.Counter("server_requests_total"),
		mShed:        reg.Counter("server_shed_total"),
		mTimeouts:    reg.Counter("server_timeouts_total"),
		mCacheHits:   reg.Counter("server_cache_hits_total"),
		mCacheMisses: reg.Counter("server_cache_misses_total"),
		hLatency:     reg.Histogram("server_request_latency"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats reports this server's result-cache effectiveness.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Hit is one search answer on the wire.
type Hit struct {
	ID           int     `json:"id"`
	Desc         string  `json:"desc"`
	Score        int     `json:"score"`
	Identity     float64 `json:"identity"`
	QueryStart   int     `json:"query_start"`
	QueryEnd     int     `json:"query_end"`
	SubjectStart int     `json:"subject_start"`
	SubjectEnd   int     `json:"subject_end"`
	Reverse      bool    `json:"reverse,omitempty"`
	Bits         float64 `json:"bits"`
	EValue       float64 `json:"evalue"`
}

func hitsFrom(rs []nucleodb.Result) []Hit {
	hits := make([]Hit, len(rs))
	for i, r := range rs {
		hits[i] = Hit{
			ID:           r.ID,
			Desc:         r.Desc,
			Score:        r.Score,
			Identity:     r.Identity,
			QueryStart:   r.QueryStart,
			QueryEnd:     r.QueryEnd,
			SubjectStart: r.SubjectStart,
			SubjectEnd:   r.SubjectEnd,
			Reverse:      r.Reverse,
			Bits:         r.Bits,
			EValue:       r.EValue,
		}
	}
	return hits
}

// SearchResponse is the /search body. Cache status and wall time ride
// in the X-Cafe-Cache and X-Cafe-Took-Us headers, not the body, so a
// cached response is byte-identical to the search that filled it.
type SearchResponse struct {
	Results []Hit                 `json:"results"`
	Stats   *nucleodb.SearchStats `json:"stats,omitempty"`
}

// BatchResponse is the /batch body; Stats aggregates the whole batch.
type BatchResponse struct {
	Results [][]Hit               `json:"results"`
	Stats   *nucleodb.SearchStats `json:"stats,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, code, body)
}

var newline = []byte{'\n'}

func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Write the trailing newline separately: body may be a cached slice
	// shared across requests, and append would race on its spare
	// capacity.
	w.Write(body)
	w.Write(newline)
}

// searchRequest is the parameter set of one /search evaluation, from
// URL parameters (GET) or a JSON body (POST). Pointer fields
// distinguish "unset" from an explicit zero.
type searchRequest struct {
	Query         string `json:"query"`
	Limit         *int   `json:"limit"`
	Candidates    *int   `json:"candidates"`
	MinScore      *int   `json:"minscore"`
	Prescreen     *int   `json:"prescreen"`
	Band          *int   `json:"band"`
	Strands       *bool  `json:"strands"`
	Exact         *bool  `json:"exact"`
	FineKernel    string `json:"fine_kernel"`
	CoarseMode    string `json:"coarse_mode"`
	CoarseBackend string `json:"coarse_backend"`
	Timeout       string `json:"timeout"`
	Stats         bool   `json:"stats"`
	NoCache       bool   `json:"nocache"`
}

func intParam(q url.Values, name string) (*int, error) {
	v := q.Get(name)
	if v == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return nil, fmt.Errorf("parameter %s=%q is not an integer", name, v)
	}
	return &n, nil
}

func boolParam(q url.Values, name string) (*bool, error) {
	v := q.Get(name)
	if v == "" {
		return nil, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return nil, fmt.Errorf("parameter %s=%q is not a boolean", name, v)
	}
	return &b, nil
}

// parseSearchRequest extracts a searchRequest from r: JSON body for
// POST, URL parameters for GET.
func parseSearchRequest(r *http.Request) (searchRequest, error) {
	var req searchRequest
	if r.Method == http.MethodPost {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("decoding JSON body: %w", err)
		}
		return req, req.validateNames()
	}
	q := r.URL.Query()
	req.Query = q.Get("q")
	if req.Query == "" {
		req.Query = q.Get("query")
	}
	var err error
	if req.Limit, err = intParam(q, "limit"); err != nil {
		return req, err
	}
	if req.Candidates, err = intParam(q, "candidates"); err != nil {
		return req, err
	}
	if req.MinScore, err = intParam(q, "minscore"); err != nil {
		return req, err
	}
	if req.Prescreen, err = intParam(q, "prescreen"); err != nil {
		return req, err
	}
	if req.Band, err = intParam(q, "band"); err != nil {
		return req, err
	}
	var b *bool
	if b, err = boolParam(q, "strands"); err != nil {
		return req, err
	}
	req.Strands = b
	if b, err = boolParam(q, "exact"); err != nil {
		return req, err
	}
	req.Exact = b
	if b, err = boolParam(q, "stats"); err != nil {
		return req, err
	}
	req.Stats = b != nil && *b
	if b, err = boolParam(q, "nocache"); err != nil {
		return req, err
	}
	req.NoCache = b != nil && *b
	req.FineKernel = q.Get("fine_kernel")
	req.CoarseMode = q.Get("coarse_mode")
	req.CoarseBackend = q.Get("coarse_backend")
	if err := req.validateNames(); err != nil {
		return req, err
	}
	req.Timeout = q.Get("timeout")
	return req, nil
}

// validateNames rejects unknown enumerated parameter values at the
// request boundary — a typo'd backend or mode must 400 here, with a
// friendlier message than the engine's validation, never fall through
// to a default.
func (req searchRequest) validateNames() error {
	if err := validFineKernel(req.FineKernel); err != nil {
		return err
	}
	if err := validCoarseMode(req.CoarseMode); err != nil {
		return err
	}
	return validCoarseBackend(req.CoarseBackend)
}

// validFineKernel rejects unknown fine_kernel values at the request
// boundary, with a friendlier message than the engine's validation.
func validFineKernel(v string) error {
	switch v {
	case "", "auto", "scalar", "bitvector":
		return nil
	}
	return fmt.Errorf("parameter fine_kernel=%q must be auto, scalar or bitvector", v)
}

// validCoarseMode rejects unknown coarse_mode values.
func validCoarseMode(v string) error {
	switch v {
	case "", "distinct", "total", "normalised", "diagonal":
		return nil
	}
	return fmt.Errorf("parameter coarse_mode=%q must be distinct, total, normalised or diagonal", v)
}

// validCoarseBackend rejects unknown coarse_backend values.
func validCoarseBackend(v string) error {
	switch v {
	case "", "auto", "postings", "signature":
		return nil
	}
	return fmt.Errorf("parameter coarse_backend=%q must be auto, postings or signature", v)
}

// options resolves the request's search options over the server
// defaults.
func (s *Server) options(req searchRequest) nucleodb.SearchOptions {
	opts := s.cfg.Options
	if req.Limit != nil {
		opts.Limit = *req.Limit
	}
	if req.Candidates != nil {
		opts.Candidates = *req.Candidates
	}
	if req.MinScore != nil {
		opts.MinScore = *req.MinScore
	}
	if req.Prescreen != nil {
		opts.Prescreen = *req.Prescreen
	}
	if req.Band != nil {
		opts.Band = *req.Band
	}
	if req.Strands != nil {
		opts.BothStrands = *req.Strands
	}
	if req.Exact != nil {
		opts.Exact = *req.Exact
	}
	if req.FineKernel != "" {
		opts.FineKernel = req.FineKernel
	}
	if req.CoarseMode != "" {
		opts.CoarseMode = req.CoarseMode
	}
	if req.CoarseBackend != "" {
		opts.CoarseBackend = req.CoarseBackend
	}
	return opts
}

// timeout resolves the request's deadline: the client's ask capped by
// MaxTimeout, or DefaultTimeout when unspecified.
func (s *Server) timeout(req searchRequest) (time.Duration, error) {
	if req.Timeout == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(req.Timeout)
	if err != nil {
		return 0, fmt.Errorf("parameter timeout=%q: %v", req.Timeout, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("parameter timeout=%q must be positive", req.Timeout)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// cacheKey builds the result-cache key: the canonical query letters
// (encode/decode normalises case and U→T) plus every option that
// affects the answer — CoarseMode changes the ranking, so it is part
// of the key. Execution knobs that are proven result-neutral
// (CoarseWorkers, FineWorkers, FineKernel, CoarseBackend — the
// equivalence property tests lock in byte-identical output) are
// deliberately excluded, so serial, sharded, bitvector-kernel and
// signature-backend configurations share cache entries.
func cacheKey(canonical string, opts nucleodb.SearchOptions) string {
	return fmt.Sprintf("%s|%d|%d|%t|%s|%t|%d|%d|%d|%t|%d",
		canonical, opts.Candidates, opts.MinCoarseHits, opts.Diagonal, opts.CoarseMode, opts.Exact,
		opts.Band, opts.MinScore, opts.Limit, opts.BothStrands, opts.Prescreen)
}

// errShed marks a request rejected because pool and queue are full.
var errShed = errors.New("server overloaded")

// acquire takes a worker slot, waiting in the bounded queue when all
// workers are busy. It fails fast with errShed when the queue is full
// and with ctx.Err() when the request deadline passes while queued.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return errShed
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.slots }

// failSearch maps a search error onto the wire: 504 for a deadline,
// nothing for a vanished client, 400 for option validation, 500
// otherwise. Returns true when the worker should count a timeout.
func (s *Server) failSearch(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "search timed out"})
	case errors.Is(err, context.Canceled):
		// The client went away; there is nobody to answer.
	case errors.Is(err, errShed):
		s.mShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server overloaded, retry later"})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET or POST"})
		return
	}
	s.mRequests.Inc()
	start := time.Now()
	req, err := parseSearchRequest(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query (q= parameter or JSON body)"})
		return
	}
	if len(req.Query) > s.cfg.MaxQueryBases {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("query of %d bases exceeds the %d-base limit", len(req.Query), s.cfg.MaxQueryBases)})
		return
	}
	codes, err := dna.Encode([]byte(req.Query))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	timeout, err := s.timeout(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	opts := s.options(req)

	// Stats requests measure an execution, so they bypass the cache in
	// both directions; everything else is served from and feeds it.
	useCache := !req.NoCache && !req.Stats
	key := ""
	if useCache {
		key = cacheKey(dna.String(codes), opts)
		if body, ok := s.cache.get(key); ok {
			s.mCacheHits.Inc()
			w.Header().Set("X-Cafe-Cache", "hit")
			w.Header().Set("X-Cafe-Took-Us", strconv.FormatInt(time.Since(start).Microseconds(), 10))
			writeBody(w, http.StatusOK, body) //cafe:allow poolescape writeBody only reads the shared cache entry; ResponseWriter.Write copies the bytes to the socket
			return
		}
		s.mCacheMisses.Inc()
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.failSearch(w, err)
		return
	}
	rs, st, err := s.db.SearchCodesWithStatsContext(ctx, codes, opts)
	s.release()
	if err != nil {
		s.failSearch(w, err)
		return
	}
	resp := SearchResponse{Results: hitsFrom(rs)}
	if req.Stats {
		resp.Stats = &st
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "encoding response"})
		return
	}
	if useCache {
		s.cache.put(key, body)
	}
	took := time.Since(start)
	s.hLatency.Observe(took)
	w.Header().Set("X-Cafe-Cache", "miss")
	w.Header().Set("X-Cafe-Took-Us", strconv.FormatInt(took.Microseconds(), 10))
	writeBody(w, http.StatusOK, body)
}

// batchRequest is the /batch body.
type batchRequest struct {
	Queries []string `json:"queries"`
	searchRequest
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	s.mRequests.Inc()
	start := time.Now()
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding JSON body: %v", err)})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing queries"})
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d queries exceeds the %d-query limit", len(req.Queries), s.cfg.MaxBatchQueries)})
		return
	}
	for i, q := range req.Queries {
		if len(q) > s.cfg.MaxQueryBases {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("query %d of %d bases exceeds the %d-base limit", i, len(q), s.cfg.MaxQueryBases)})
			return
		}
	}
	timeout, err := s.timeout(req.searchRequest)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	opts := s.options(req.searchRequest)

	// A batch occupies one pool slot; its internal fan-out is bounded
	// separately so one big batch cannot monopolise every worker.
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.failSearch(w, err)
		return
	}
	lists, st, err := s.db.SearchBatchWithStatsContext(ctx, req.Queries, opts, s.cfg.BatchWorkers)
	s.release()
	if err != nil {
		s.failSearch(w, err)
		return
	}
	resp := BatchResponse{Results: make([][]Hit, len(lists))}
	for i, rs := range lists {
		resp.Results[i] = hitsFrom(rs)
	}
	if req.Stats {
		resp.Stats = &st
	}
	took := time.Since(start)
	s.hLatency.Observe(took)
	w.Header().Set("X-Cafe-Took-Us", strconv.FormatInt(took.Microseconds(), 10))
	writeJSON(w, http.StatusOK, resp)
}

// healthzResponse is deliberately static for a given database so
// probes and golden tests see a stable body.
type healthzResponse struct {
	Status    string `json:"status"`
	Sequences int    `json:"sequences"`
	Bases     int    `json:"bases"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:    "ok",
		Sequences: s.db.NumSequences(),
		Bases:     s.db.TotalBases(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := nucleodb.WriteMetrics(w); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "encoding metrics"})
	}
}
