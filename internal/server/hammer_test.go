package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nucleodb"
	"nucleodb/internal/dna"
)

// The hammer tests exist to fail under -race: they drive the result
// cache and the searcher pool through their concurrent fast paths with
// constant eviction and index swaps, the two regimes where a missed
// lock or a torn pointer would actually bite in production.

// TestResultCacheHammer pounds a tiny cache (capacity far below the
// key space, so every put evicts) with concurrent gets, puts, and
// stats reads. Each body encodes its key, so a hit that returns
// another key's bytes — the signature of list/map corruption — is
// caught even when the race detector is off.
func TestResultCacheHammer(t *testing.T) {
	const (
		capacity = 8
		keySpace = 64
		workers  = 8
		opsEach  = 2000
	)
	c := newResultCache(capacity)
	var gets, hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("key-%d", rng.Intn(keySpace))
				switch rng.Intn(4) {
				case 0:
					c.put(key, []byte("body:"+key))
				case 1:
					_ = c.Len()
					_ = c.stats()
				default:
					gets.Add(1)
					if body, ok := c.get(key); ok {
						hits.Add(1)
						if string(body) != "body:"+key {
							t.Errorf("cache returned %q for %q", body, key)
						}
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()

	if n := c.Len(); n > capacity {
		t.Errorf("cache holds %d entries, capacity %d", n, capacity)
	}
	st := c.stats()
	if st.Hits+st.Misses != gets.Load() {
		t.Errorf("hits %d + misses %d != gets %d", st.Hits, st.Misses, gets.Load())
	}
	if st.Hits != hits.Load() {
		t.Errorf("stats hits %d, observed %d", st.Hits, hits.Load())
	}
	// The cache saw real contention for the eviction path, not a
	// degenerate all-miss run.
	if st.Hits == 0 {
		t.Error("hammer produced no hits; key space or op mix is broken")
	}
}

// TestServerHammerShardedCoarse runs the sharded-coarse configuration
// under the same concurrent load shape as the Appends hammer: many
// simultaneous searches, each internally fanning its coarse phase out
// over CoarseWorkers goroutines, across pooled searchers and an index
// swap. Two layers of parallelism multiply here (request workers ×
// coarse shards), so a shard touching searcher state it doesn't own —
// or a pooled shard accumulator leaking between searchers — shows up
// under -race or as a wrong answer.
func TestServerHammerShardedCoarse(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(cfg *Config) {
		cfg.Workers = 8
		cfg.QueueDepth = 64
		cfg.CacheSize = 0 // every request runs a real sharded search
		cfg.Options.CoarseWorkers = 4
	})
	h := s.Handler()

	// Serial reference answers: the sharded server must reproduce them
	// exactly, per the coarse equivalence contract.
	serialDB := db
	serialOpts := s.cfg.Options
	serialOpts.CoarseWorkers = 0

	const waves = 2
	for wave := 0; wave < waves; wave++ {
		queries := testQueries(db, 16, int64(500+wave))
		want := make([]string, len(queries))
		for i, q := range queries {
			rs, err := serialDB.Search(q, serialOpts)
			if err != nil {
				t.Fatalf("wave %d: serial reference: %v", wave, err)
			}
			want[i] = fmt.Sprintf("%+v", rs)
		}

		var waveWG sync.WaitGroup
		for i, q := range queries {
			waveWG.Add(1)
			go func(i int, q string) {
				defer waveWG.Done()
				req := httptest.NewRequest(http.MethodGet, "/search?q="+q, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("wave %d query %d: status %d: %s", wave, i, rec.Code, rec.Body.String())
					return
				}
				// Cross-check through the library path too, so the
				// comparison is on typed results rather than JSON.
				rs, err := db.Search(q, s.cfg.Options)
				if err != nil {
					t.Errorf("wave %d query %d: sharded search: %v", wave, i, err)
					return
				}
				if got := fmt.Sprintf("%+v", rs); got != want[i] {
					t.Errorf("wave %d query %d: sharded results diverge from serial\n got %s\nwant %s", wave, i, got, want[i])
				}
			}(i, q)
		}
		// Quiescing here is no longer required by any contract (Append is
		// snapshot-swap safe); it keeps the serial reference comparison
		// deterministic across waves.
		waveWG.Wait()

		rng := rand.New(rand.NewSource(int64(900 + wave)))
		recs := make([]nucleodb.Record, 2)
		for i := range recs {
			codes := make([]byte, 200)
			for j := range codes {
				codes[j] = byte(rng.Intn(4))
			}
			recs[i] = nucleodb.Record{
				Desc:     fmt.Sprintf("sharded-appended-%d-%d", wave, i),
				Sequence: dna.String(codes),
			}
		}
		if err := db.Append(recs); err != nil {
			t.Fatalf("wave %d: append: %v", wave, err)
		}
	}
}

// TestServerHammerAcrossAppends drives the full service path — worker
// pool, searcher pool, result cache — through waves of concurrent
// searches separated by Appends. Each wave quiesces before its Append
// so the swap boundary is deterministic (truly overlapped traffic is
// TestServerHammerLiveCompaction's job), while direct get/put traffic
// on the server's result cache keeps hammering straight through the
// snapshot swap, since the cache never touches the index. After every
// swap the next wave's fresh queries must still answer 200 with
// results, proving stale pooled searchers are dropped, not reused.
func TestServerHammerAcrossAppends(t *testing.T) {
	db := testDB(t)
	s := newTestServer(t, db, func(cfg *Config) {
		cfg.Workers = 8
		cfg.QueueDepth = 64
		cfg.CacheSize = 4 // force eviction under the wave load
	})
	h := s.Handler()

	// Cache-only traffic runs for the whole test including during
	// Appends: gets and puts over a key space wider than the capacity,
	// so evictions overlap the snapshot swap. It bypasses the handler so
	// cache behaviour is isolated from search behaviour.
	stop := make(chan struct{})
	var cacheWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		cacheWG.Add(1)
		go func(seed int64) {
			defer cacheWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("bg-%d", rng.Intn(16))
				if rng.Intn(2) == 0 {
					s.cache.put(key, []byte("body:"+key))
				} else if body, ok := s.cache.get(key); ok && string(body) != "body:"+key {
					t.Errorf("cache returned %q for %q", body, key)
					return
				}
			}
		}(int64(w))
	}

	const waves = 3
	for wave := 0; wave < waves; wave++ {
		queries := testQueries(db, 16, int64(100+wave))
		var waveWG sync.WaitGroup
		for i, q := range queries {
			waveWG.Add(1)
			go func(i int, q string) {
				defer waveWG.Done()
				// nocache on half the queries keeps the searcher pool
				// itself under load instead of the cache absorbing it.
				path := "/search?q=" + q
				if i%2 == 0 {
					path += "&nocache=1"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("wave %d: status %d: %s", wave, rec.Code, rec.Body.String())
					return
				}
				if !strings.Contains(rec.Body.String(), `"results"`) {
					t.Errorf("wave %d: response lacks results: %s", wave, rec.Body.String())
				}
			}(i, q)
		}
		waveWG.Wait() // deterministic swap boundary for the wave structure

		rng := rand.New(rand.NewSource(int64(wave)))
		recs := make([]nucleodb.Record, 4)
		for i := range recs {
			codes := make([]byte, 200)
			for j := range codes {
				codes[j] = byte(rng.Intn(4))
			}
			recs[i] = nucleodb.Record{
				Desc:     fmt.Sprintf("appended-%d-%d", wave, i),
				Sequence: dna.String(codes),
			}
		}
		if err := db.Append(recs); err != nil {
			t.Fatalf("wave %d: append: %v", wave, err)
		}
	}

	// A record appended in the last wave must be findable, proving the
	// post-swap searchers see the merged index.
	final := db.Sequence(db.NumSequences() - 1)
	req := httptest.NewRequest(http.MethodGet, "/search?q="+final[:100]+"&nocache=1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("appended-record query: status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "appended-") {
		t.Errorf("appended record not found after index swaps: %s", rec.Body.String())
	}

	close(stop)
	cacheWG.Wait()

	if st := s.CacheStats(); st.Entries > 4 {
		t.Errorf("cache grew past its capacity: %d entries", st.Entries)
	}
}

// TestServerHammerLiveCompaction is the no-quiesce hammer the
// segmented index makes legal: HTTP searches, Appends, Deletes, and
// background compaction all overlap freely. Every in-flight request
// runs against whichever segment-set snapshot it pinned at checkout,
// so every response must be a well-formed 200 no matter how many
// swaps happen mid-flight. Run under -race this is the service-level
// lockdown for the lock-free read path.
func TestServerHammerLiveCompaction(t *testing.T) {
	db := testDB(t)
	db.SetMaxSegments(3)
	compactErrs := make(chan error, 8)
	db.StartCompactor(func(err error) {
		select {
		case compactErrs <- err:
		default:
		}
	})
	defer db.StopCompactor()

	s := newTestServer(t, db, func(cfg *Config) {
		cfg.Workers = 8
		cfg.QueueDepth = 64
		cfg.CacheSize = 4
	})
	h := s.Handler()
	queries := testQueries(db, 8, 600)

	// Searchers: continuous handler traffic with no coordination with
	// the writer whatsoever.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				path := "/search?q=" + queries[rng.Intn(len(queries))]
				if rng.Intn(2) == 0 {
					path += "&nocache=1"
				}
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("status %d during live compaction: %s", rec.Code, rec.Body.String())
					return
				}
				if !strings.Contains(rec.Body.String(), `"results"`) {
					t.Errorf("response lacks results: %s", rec.Body.String())
					return
				}
			}
		}(int64(700 + w))
	}

	// Writer: a stream of small Appends plus a few Deletes, each one
	// triggering the background compactor, all while searches fly.
	rng := rand.New(rand.NewSource(800))
	for round := 0; round < 10; round++ {
		recs := make([]nucleodb.Record, 3)
		for i := range recs {
			codes := make([]byte, 200)
			for j := range codes {
				codes[j] = byte(rng.Intn(4))
			}
			recs[i] = nucleodb.Record{
				Desc:     fmt.Sprintf("live-%d-%d", round, i),
				Sequence: dna.String(codes),
			}
		}
		if err := db.Append(recs); err != nil {
			t.Fatalf("round %d: append: %v", round, err)
		}
		if round%3 == 2 {
			if err := db.Delete(db.NumSequences() - 1); err != nil {
				t.Fatalf("round %d: delete: %v", round, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	db.StopCompactor()
	select {
	case err := <-compactErrs:
		t.Fatalf("background compaction: %v", err)
	default:
	}

	// The compactor had every chance to run; the folded database still
	// finds a record appended mid-hammer.
	if got := db.NumSegments(); got > 3+1 {
		t.Logf("note: %d segments after hammer (compactor may not have caught up)", got)
	}
	target := db.Sequence(db.NumSequences() - 2) // -1 may be tombstoned
	req := httptest.NewRequest(http.MethodGet, "/search?q="+target[:100]+"&nocache=1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-hammer query: status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "live-") {
		t.Errorf("record appended during the hammer not found: %s", rec.Body.String())
	}
}
