package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a fixed-capacity LRU over marshalled search
// responses, keyed on (canonical query, options). Entries are the
// exact JSON bytes written to clients, so a hit costs one map lookup
// and one write — no re-search, no re-marshal. The cache is safe for
// concurrent use; hits and misses are counted for the hit-rate the
// operator watches.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache holding up to capacity entries, or
// nil when capacity ≤ 0 (caching disabled; lookups miss, stores drop).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached body for key and marks it most recently used.
// The returned slice is the shared cache entry itself: callers may only
// read it (every concurrent hit hands out the same backing array).
//
//cafe:pooled the returned body is shared across concurrent hits; never mutate or append to it
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	c.mu.Unlock()
	c.hits.Add(1)
	return body, true
}

// put stores body under key, evicting the least recently used entry
// when the cache is full. body must not be mutated after the call.
func (c *resultCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Entries int
	Hits    int64
	Misses  int64
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Entries: c.Len(), Hits: c.hits.Load(), Misses: c.misses.Load()}
}
