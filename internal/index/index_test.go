package index

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

func storeOf(seqs ...string) *db.Store {
	var s db.Store
	for i, q := range seqs {
		s.Add("rec"+string(rune('0'+i)), dna.MustEncode(q))
	}
	return &s
}

func TestBuildSmall(t *testing.T) {
	s := storeOf("ACGTACGT", "TTTACGTT", "GGGGGGGG")
	x, err := Build(s, Options{K: 4, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumSeqs() != 3 {
		t.Fatalf("NumSeqs = %d", x.NumSeqs())
	}
	coder := x.Coder()

	// ACGT occurs in sequences 0 (offsets 0 and 4) and 1 (offset 3).
	got, err := x.Postings(coder.Encode(dna.MustEncode("ACGT")))
	if err != nil {
		t.Fatal(err)
	}
	want := []postings.Entry{
		{ID: 0, Count: 2, Offsets: []uint32{0, 4}},
		{ID: 1, Count: 1, Offsets: []uint32{3}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postings(ACGT) = %+v, want %+v", got, want)
	}

	// GGGG occurs 5 times in sequence 2 only.
	got, err = x.Postings(coder.Encode(dna.MustEncode("GGGG")))
	if err != nil {
		t.Fatal(err)
	}
	want = []postings.Entry{{ID: 2, Count: 5, Offsets: []uint32{0, 1, 2, 3, 4}}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postings(GGGG) = %+v, want %+v", got, want)
	}

	// Absent term.
	if got, err := x.Postings(coder.Encode(dna.MustEncode("CCCC"))); err != nil || got != nil {
		t.Errorf("postings(CCCC) = %+v, %v", got, err)
	}
}

func TestBuildWithoutOffsets(t *testing.T) {
	s := storeOf("ACGTACGT", "TTTACGTT")
	x, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := x.Postings(x.Coder().Encode(dna.MustEncode("ACGT")))
	if err != nil {
		t.Fatal(err)
	}
	want := []postings.Entry{{ID: 0, Count: 2}, {ID: 1, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postings = %+v, want %+v", got, want)
	}
}

func TestBuildOptionsValidation(t *testing.T) {
	s := storeOf("ACGT")
	for _, o := range []Options{{K: 0}, {K: MaxK + 1}, {K: 4, StopFraction: -0.1}, {K: 4, StopFraction: 1.5}} {
		if _, err := Build(s, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
}

func TestDF(t *testing.T) {
	s := storeOf("ACGTACGT", "TTTACGTT", "GGGGGGGG")
	x, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Coder()
	if df := x.DF(c.Encode(dna.MustEncode("ACGT"))); df != 2 {
		t.Errorf("DF(ACGT) = %d, want 2", df)
	}
	if df := x.DF(c.Encode(dna.MustEncode("GGGG"))); df != 1 {
		t.Errorf("DF(GGGG) = %d, want 1", df)
	}
	if df := x.DF(c.Encode(dna.MustEncode("CCCC"))); df != 0 {
		t.Errorf("DF(CCCC) = %d, want 0", df)
	}
}

func TestShortSequencesYieldNothing(t *testing.T) {
	s := storeOf("AC", "A", "")
	x, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.NumTermsIndexed() != 0 {
		t.Errorf("short sequences produced %d terms", x.NumTermsIndexed())
	}
	if x.NumSeqs() != 3 {
		t.Errorf("NumSeqs = %d", x.NumSeqs())
	}
}

func TestStopping(t *testing.T) {
	// AAAA is by far the most frequent interval; stopping a small
	// fraction must remove exactly it.
	s := storeOf("AAAAAAAAAAAAAAAAAAAAAAAA", "ACGTACGTACGT", "AAAAAAAACCCC")
	noStop, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(s, Options{K: 4, StopFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	c := x.Coder()
	aaaa := c.Encode(dna.MustEncode("AAAA"))
	if !x.Stopped(aaaa) {
		t.Fatal("AAAA not stopped")
	}
	if x.DF(aaaa) != 0 {
		t.Errorf("stopped term has DF %d", x.DF(aaaa))
	}
	if noStop.DF(aaaa) == 0 {
		t.Error("unstopped index lacks AAAA")
	}
	if x.NumStopped() == 0 || x.NumTermsIndexed() >= noStop.NumTermsIndexed() {
		t.Errorf("stopping had no effect: %d stopped, %d vs %d terms",
			x.NumStopped(), x.NumTermsIndexed(), noStop.NumTermsIndexed())
	}
	if x.PostingsBytes() >= noStop.PostingsBytes() {
		t.Errorf("stopping did not shrink postings: %d vs %d", x.PostingsBytes(), noStop.PostingsBytes())
	}
	// Other terms unaffected.
	acgt := c.Encode(dna.MustEncode("ACGT"))
	a, _ := x.Postings(acgt)
	b, _ := noStop.Postings(acgt)
	if !reflect.DeepEqual(a, b) {
		t.Error("stopping altered an unstopped term's list")
	}
}

func TestReaderIteratesAll(t *testing.T) {
	s := storeOf("ACGTACGT", "TTTACGTT", "ACGTTTTT")
	x, err := Build(s, Options{K: 4, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	var it postings.Iterator
	df := x.Reader(x.Coder().Encode(dna.MustEncode("ACGT")), &it)
	if df != 3 {
		t.Fatalf("Reader df = %d, want 3", df)
	}
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != df {
		t.Errorf("iterated %d entries, want %d", n, df)
	}
	// Unknown term: empty iterator, df 0.
	if df := x.Reader(kmer.Term(1<<40), &it); df != 0 {
		t.Errorf("unknown term df = %d", df)
	}
	if it.Next() {
		t.Error("empty iterator yielded an entry")
	}
}

func TestSeqLens(t *testing.T) {
	s := storeOf("ACGTACGT", "TTT")
	x, err := Build(s, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if x.SeqLen(0) != 8 || x.SeqLen(1) != 3 {
		t.Errorf("SeqLen = %d,%d", x.SeqLen(0), x.SeqLen(1))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var s db.Store
	for i := 0; i < 30; i++ {
		seq := make([]byte, 50+rng.Intn(200))
		for j := range seq {
			seq[j] = byte(rng.Intn(dna.NumBases))
		}
		s.Add("r", seq)
	}
	for _, opts := range []Options{
		{K: 6, StoreOffsets: true},
		{K: 8, StoreOffsets: false, StopFraction: 0.05},
	} {
		x, err := Build(&s, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Options() != x.Options() {
			t.Errorf("options = %+v, want %+v", got.Options(), x.Options())
		}
		if got.NumSeqs() != x.NumSeqs() || got.NumTermsIndexed() != x.NumTermsIndexed() ||
			got.NumStopped() != x.NumStopped() || got.PostingsBytes() != x.PostingsBytes() {
			t.Fatalf("loaded index shape differs")
		}
		// Every term's postings must round-trip.
		for _, term := range x.terms {
			a, err := x.Postings(kmer.Term(term))
			if err != nil {
				t.Fatal(err)
			}
			b, err := got.Postings(kmer.Term(term))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("term %d postings differ after reload", term)
			}
		}
		for id := 0; id < x.NumSeqs(); id++ {
			if got.SeqLen(id) != x.SeqLen(id) {
				t.Errorf("SeqLen(%d) differs", id)
			}
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	s := storeOf("ACGTACGTAC", "TTTTACGT")
	x, err := Build(s, Options{K: 4, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader([]byte("NOTANIDX"))); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{8, 10, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestIndexSizeAccounting(t *testing.T) {
	s := storeOf("ACGTACGTACGTACGT", "TGCATGCATGCA")
	x, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.SizeBytes() < x.PostingsBytes()+x.LexiconBytes() {
		t.Error("SizeBytes misses components")
	}
	if x.PostingsBytes() == 0 || x.LexiconBytes() == 0 {
		t.Error("zero-size components on a non-trivial index")
	}
}

func TestPostingsSortedWithinTerm(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var s db.Store
	for i := 0; i < 50; i++ {
		seq := make([]byte, 100)
		for j := range seq {
			seq[j] = byte(rng.Intn(dna.NumBases))
		}
		s.Add("r", seq)
	}
	x, err := Build(&s, Options{K: 5, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range x.terms {
		entries, err := x.Postings(kmer.Term(term))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].ID <= entries[i-1].ID {
				t.Fatalf("term %d ids not ascending", term)
			}
		}
		for _, e := range entries {
			for j := 1; j < len(e.Offsets); j++ {
				if e.Offsets[j] <= e.Offsets[j-1] {
					t.Fatalf("term %d offsets not ascending", term)
				}
			}
		}
	}
}
