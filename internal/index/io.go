package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// indexMagic identifies the on-disk index format, version 1.
const indexMagic = "NDBidx1\n"

// SerializedBytes returns the exact on-disk size of the index: the
// measure the size experiments report, since the disk format
// delta-codes the lexicon that SizeBytes counts as flat arrays.
func (x *Index) SerializedBytes() (int, error) {
	var cw countingWriter
	if err := x.Save(&cw); err != nil {
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// Save writes the index to w. The format is:
//
//	magic
//	uvarint K, offsetsFlag, stopFraction×1e6, skipInterval,
//	maskLen, maskLen bytes of spaced mask
//	uvarint numSeqs, numSeqs × uvarint sequence length
//	uvarint numStopped, stopped terms delta-coded
//	uvarint numTerms, per term: uvarint term delta, df, list length
//	uvarint blob length, blob
func (x *Index) Save(w io.Writer) error {
	if x.fetch != nil {
		return fmt.Errorf("index: Save is unsupported on a disk-opened index; copy the file instead")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	offFlag := uint64(0)
	if x.opts.StoreOffsets {
		offFlag = 1
	}
	for _, v := range []uint64{uint64(x.opts.K), offFlag, uint64(x.opts.StopFraction * 1e6), uint64(x.opts.SkipInterval), uint64(len(x.opts.SpacedMask))} {
		if err := put(v); err != nil {
			return fmt.Errorf("index: save header: %w", err)
		}
	}
	if _, err := bw.WriteString(x.opts.SpacedMask); err != nil {
		return fmt.Errorf("index: save header: %w", err)
	}
	if err := put(uint64(x.numSeqs)); err != nil {
		return fmt.Errorf("index: save header: %w", err)
	}
	for _, l := range x.seqLens {
		if err := put(uint64(l)); err != nil {
			return fmt.Errorf("index: save lengths: %w", err)
		}
	}
	if err := put(uint64(len(x.stopped))); err != nil {
		return fmt.Errorf("index: save stop list: %w", err)
	}
	prev := uint64(0)
	for _, t := range x.stopped {
		if err := put(t - prev); err != nil {
			return fmt.Errorf("index: save stop list: %w", err)
		}
		prev = t
	}
	if err := put(uint64(len(x.terms))); err != nil {
		return fmt.Errorf("index: save lexicon: %w", err)
	}
	prev = 0
	for i, t := range x.terms {
		if err := put(t - prev); err != nil {
			return fmt.Errorf("index: save lexicon: %w", err)
		}
		prev = t
		if err := put(uint64(x.dfs[i])); err != nil {
			return fmt.Errorf("index: save lexicon: %w", err)
		}
		if err := put(uint64(x.lens[i])); err != nil {
			return fmt.Errorf("index: save lexicon: %w", err)
		}
	}
	if err := put(uint64(len(x.blob))); err != nil {
		return fmt.Errorf("index: save blob: %w", err)
	}
	if _, err := bw.Write(x.blob); err != nil {
		return fmt.Errorf("index: save blob: %w", err)
	}
	return bw.Flush()
}

// Load reads an index previously written by Save, including its blob,
// into memory.
func Load(r io.Reader) (*Index, error) {
	x, blobLen, br, _, err := loadHeader(r)
	if err != nil {
		return nil, err
	}
	x.blob, err = readCapped(br, blobLen)
	if err != nil {
		return nil, fmt.Errorf("index: load blob: %w", err)
	}
	return x, nil
}

// readCapped reads exactly n bytes from r, growing the buffer
// incrementally so that a corrupt length claim fails with a read error
// after a bounded allocation instead of a single n-byte make — header
// fields must never size allocations the data cannot back.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		take := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, take)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// countingReader tracks how many bytes have been consumed from the
// underlying reader, so OpenDisk can locate the blob.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// loadHeader parses the header and lexicon (everything before the
// blob) and returns the index without its blob, the blob length, the
// buffered reader positioned at the blob, and the blob's byte offset
// in the original stream.
func loadHeader(r io.Reader) (*Index, uint64, *bufio.Reader, int64, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	fail := func(err error) (*Index, uint64, *bufio.Reader, int64, error) {
		return nil, 0, nil, 0, err
	}
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fail(fmt.Errorf("index: load: %w", err))
	}
	if string(magic) != indexMagic {
		return fail(fmt.Errorf("index: load: bad magic %q", magic))
	}
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("index: load %s: %w", what, err)
		}
		return v, nil
	}
	k, err := get("K")
	if err != nil {
		return fail(err)
	}
	offFlag, err := get("offsets flag")
	if err != nil {
		return fail(err)
	}
	stopFrac, err := get("stop fraction")
	if err != nil {
		return fail(err)
	}
	skipInterval, err := get("skip interval")
	if err != nil {
		return fail(err)
	}
	maskLen, err := get("spaced mask length")
	if err != nil {
		return fail(err)
	}
	if maskLen > 256 {
		return fail(fmt.Errorf("index: load: implausible spaced mask length %d", maskLen))
	}
	maskBytes := make([]byte, maskLen)
	if _, err := io.ReadFull(br, maskBytes); err != nil {
		return fail(fmt.Errorf("index: load spaced mask: %w", err))
	}
	// Bound every header field as uint64 BEFORE converting to int.
	// int(v) on a 32-bit platform keeps only the low 32 bits, so an
	// adversarial k of 1<<32+9 would silently decode as 9 and sail
	// through opts.validate; the checks must happen at full width.
	if k > MaxK {
		return fail(fmt.Errorf("index: load: interval length %d above %d", k, MaxK))
	}
	if stopFrac > 1e6 {
		return fail(fmt.Errorf("index: load: stop fraction %d above 1e6", stopFrac))
	}
	if skipInterval > 1<<20 {
		return fail(fmt.Errorf("index: load: implausible skip interval %d", skipInterval))
	}
	opts := Options{
		K:            int(k),
		StoreOffsets: offFlag == 1,
		StopFraction: float64(stopFrac) / 1e6,
		SkipInterval: int(skipInterval),
		SpacedMask:   string(maskBytes),
	}
	if err := opts.validate(); err != nil {
		return fail(fmt.Errorf("index: load: %w", err))
	}
	coder, err := opts.coder()
	if err != nil {
		return fail(fmt.Errorf("index: load: %w", err))
	}
	if opts.SpacedMask != "" && coder.K() != opts.K {
		return fail(fmt.Errorf("index: load: mask weight %d does not match stored K %d", coder.K(), opts.K))
	}
	numSeqs, err := get("sequence count")
	if err != nil {
		return fail(err)
	}
	// 1<<31-1, not 1<<40: numSeqs feeds int(numSeqs) and sequence IDs
	// are int32 throughout, so anything above that would truncate on
	// 32-bit platforms and overflow IDs on 64-bit ones.
	if numSeqs > 1<<31-1 {
		return fail(fmt.Errorf("index: load: implausible sequence count %d", numSeqs))
	}
	// Counts below size allocations from untrusted input, so every slice
	// grows incrementally with a capped initial capacity: each element
	// consumes at least one byte from the reader, so a lying count fails
	// with a read error after a bounded allocation rather than an OOM.
	const capHint = 1 << 20
	x := &Index{opts: opts, coder: coder, numSeqs: int(numSeqs)}
	x.seqLens = make([]int32, 0, min(numSeqs, capHint))
	for i := uint64(0); i < numSeqs; i++ {
		l, err := get("sequence length")
		if err != nil {
			return fail(err)
		}
		if l > 1<<31-1 {
			return fail(fmt.Errorf("index: load: sequence %d length %d overflows", i, l))
		}
		x.seqLens = append(x.seqLens, int32(l))
	}
	numStopped, err := get("stop count")
	if err != nil {
		return fail(err)
	}
	if numStopped > coder.NumTerms() {
		return fail(fmt.Errorf("index: load: %d stopped terms exceeds vocabulary", numStopped))
	}
	x.stopped = make([]uint64, 0, min(numStopped, capHint))
	prev := uint64(0)
	for i := uint64(0); i < numStopped; i++ {
		d, err := get("stopped term")
		if err != nil {
			return fail(err)
		}
		if d > coder.NumTerms() || prev+d >= coder.NumTerms() {
			return fail(fmt.Errorf("index: load: stopped term %d outside vocabulary", i))
		}
		prev += d
		x.stopped = append(x.stopped, prev)
	}
	numTerms, err := get("term count")
	if err != nil {
		return fail(err)
	}
	if numTerms > coder.NumTerms() {
		return fail(fmt.Errorf("index: load: %d terms exceeds vocabulary", numTerms))
	}
	x.terms = make([]uint64, 0, min(numTerms, capHint))
	x.dfs = make([]uint32, 0, min(numTerms, capHint))
	x.offs = make([]uint64, 0, min(numTerms, capHint))
	x.lens = make([]uint32, 0, min(numTerms, capHint))
	prev = 0
	var off uint64
	for i := uint64(0); i < numTerms; i++ {
		d, err := get("term")
		if err != nil {
			return fail(err)
		}
		if i == 0 {
			// The first delta is the term itself; later deltas are ≥ 1.
			if d >= coder.NumTerms() {
				return fail(fmt.Errorf("index: load: term %d outside vocabulary", i))
			}
		} else if d == 0 || d >= coder.NumTerms() || prev+d >= coder.NumTerms() {
			return fail(fmt.Errorf("index: load: term %d outside vocabulary", i))
		}
		prev += d
		x.terms = append(x.terms, prev)
		df, err := get("df")
		if err != nil {
			return fail(err)
		}
		if df == 0 || df > numSeqs {
			return fail(fmt.Errorf("index: load: term %d df %d outside (0,%d]", i, df, numSeqs))
		}
		x.dfs = append(x.dfs, uint32(df))
		l, err := get("list length")
		if err != nil {
			return fail(err)
		}
		if l > 1<<31-1 {
			return fail(fmt.Errorf("index: load: term %d list length %d overflows", i, l))
		}
		x.offs = append(x.offs, off)
		x.lens = append(x.lens, uint32(l))
		off += l
	}
	blobLen, err := get("blob length")
	if err != nil {
		return fail(err)
	}
	if blobLen != off {
		return fail(fmt.Errorf("index: load: blob length %d does not match lexicon total %d", blobLen, off))
	}
	blobOffset := cr.n - int64(br.Buffered())
	return x, blobLen, br, blobOffset, nil
}
