package index

import (
	"fmt"
	"io"
	"os"
)

// OpenDisk opens an index file for paged access: the header, lexicon
// and per-sequence tables load into memory, but posting lists stay on
// disk and are read on demand per query term. This is the paper's
// operating regime — an on-disk index over a collection too large to
// hold in memory, where each query touches only its own terms' lists.
//
// The returned index supports the full read API (Reader, Postings,
// SkippedReader, IntersectTerms, Merge as a source) concurrently from
// multiple goroutines; Save and SerializedBytes are not supported.
// Close releases the underlying file.
func OpenDisk(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open disk: %w", err)
	}
	x, blobLen, _, blobOffset, err := loadHeader(f)
	if err != nil {
		_ = f.Close() //cafe:allow best-effort close on the error path; the load error is the one to report
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() //cafe:allow best-effort close on the error path; the stat error is the one to report
		return nil, fmt.Errorf("index: open disk: %w", err)
	}
	if st.Size() < blobOffset+int64(blobLen) {
		_ = f.Close() //cafe:allow best-effort close on the error path; the size mismatch is the one to report
		return nil, fmt.Errorf("index: open disk: file is %d bytes, blob needs %d",
			st.Size(), blobOffset+int64(blobLen))
	}
	x.blobLen = int(blobLen)
	x.closer = f
	x.fetch = func(off uint64, n uint32) ([]byte, error) {
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, blobOffset+int64(off)); err != nil {
			return nil, fmt.Errorf("index: disk read at %d+%d: %w", blobOffset, off, err)
		}
		return buf, nil
	}
	return x, nil
}

// Close releases resources held by a disk-opened index. It is a no-op
// for in-memory indexes.
func (x *Index) Close() error {
	if x.closer == nil {
		return nil
	}
	err := x.closer.Close()
	x.closer = nil
	x.fetch = func(off uint64, n uint32) ([]byte, error) {
		return nil, fmt.Errorf("index: read after Close")
	}
	return err
}

// Disk reports whether the index reads posting lists from disk on
// demand rather than holding them in memory.
func (x *Index) Disk() bool { return x.fetch != nil }

var _ io.Closer = (*Index)(nil)
