package index

import (
	"bytes"
	"testing"

	"nucleodb/internal/kmer"
)

func TestBuildSpacedIndex(t *testing.T) {
	s := randomStore(211, 40, 300)
	idx, err := Build(s, Options{SpacedMask: "1101011", StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Options().SpacedMask; got != "1101011" {
		t.Errorf("mask = %q", got)
	}
	if idx.K() != 5 { // weight of the mask
		t.Errorf("K = %d, want 5 (mask weight)", idx.K())
	}
	if !idx.Coder().Spaced() {
		t.Error("coder not spaced")
	}
	// Postings point at real windows: every posting offset must admit
	// a window of the mask's span, and re-encoding the stored window
	// must reproduce the term.
	span := idx.Coder().Span()
	checked := 0
	idx.Terms(func(term kmer.Term, df int) {
		entries, err := idx.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			for _, off := range e.Offsets {
				if int(off)+span > idx.SeqLen(int(e.ID)) {
					t.Fatalf("offset %d + span %d beyond sequence %d length %d",
						off, span, e.ID, idx.SeqLen(int(e.ID)))
				}
				// The term re-derives from the stored sequence window.
				seq := s.Sequence(int(e.ID))
				if got := idx.Coder().Encode(seq[off:]); got != term {
					t.Fatalf("posting window does not encode to its term")
				}
				checked++
			}
		}
	})
	if checked == 0 {
		t.Fatal("no postings checked")
	}
}

func TestSpacedIndexSaveLoad(t *testing.T) {
	s := randomStore(212, 20, 250)
	idx, err := Build(s, Options{SpacedMask: "110101", StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options() != idx.Options() {
		t.Fatalf("options = %+v, want %+v", got.Options(), idx.Options())
	}
	if !got.Coder().Spaced() || got.Coder().Mask() != "110101" {
		t.Error("loaded coder lost its mask")
	}
}

func TestSpacedMaskValidation(t *testing.T) {
	s := randomStore(213, 5, 100)
	for _, mask := range []string{"0", "01", "1x", "11111111111111111"} {
		if _, err := Build(s, Options{SpacedMask: mask}); err == nil {
			t.Errorf("mask %q accepted", mask)
		}
	}
	// A spaced build ignores K entirely.
	idx, err := Build(s, Options{SpacedMask: "101", K: 99})
	if err != nil {
		t.Fatalf("spaced build with junk K rejected: %v", err)
	}
	if idx.K() != 2 {
		t.Errorf("K = %d, want mask weight 2", idx.K())
	}
}

func TestSpacedMergeRequiresSameMask(t *testing.T) {
	sa := randomStore(214, 10, 200)
	sb := randomStore(215, 10, 200)
	a, err := Build(sa, Options{SpacedMask: "1101"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sb, Options{SpacedMask: "1011"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched masks accepted")
	}
	b2, err := Build(sb, Options{SpacedMask: "1101"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b2); err != nil {
		t.Errorf("same-mask merge rejected: %v", err)
	}
}
