package index

import (
	"fmt"

	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// Merge combines two indexes built with the same options into one, as
// if the second collection's sequences had been appended to the first
// (the second index's sequence ids are shifted by the first's count).
// Collections can thus be indexed in segments and merged, the standard
// recipe for incremental growth.
//
// Posting lists are re-encoded because the Golomb parameters depend on
// the merged sequence count; the result is byte-identical to an index
// built over the concatenated collection, except for the stop list,
// which is the union of the inputs' (stopping decisions are
// per-segment; rebuild to re-stop globally).
func Merge(a, b *Index) (*Index, error) {
	if a.opts != b.opts {
		return nil, fmt.Errorf("index: merge options differ: %+v vs %+v", a.opts, b.opts)
	}
	numSeqs := a.numSeqs + b.numSeqs
	out := &Index{
		opts:    a.opts,
		coder:   a.coder,
		numSeqs: numSeqs,
		seqLens: make([]int32, 0, numSeqs),
	}
	out.seqLens = append(out.seqLens, a.seqLens...)
	out.seqLens = append(out.seqLens, b.seqLens...)

	// Union of stop lists, ascending.
	out.stopped = mergeSorted(a.stopped, b.stopped)

	// Walk both lexicons in term order.
	ai, bi := 0, 0
	shift := uint32(a.numSeqs)
	var entries []postings.Entry
	appendList := func(entries []postings.Entry) error {
		var buf []byte
		var err error
		if out.opts.SkipInterval > 0 {
			interval := out.opts.SkipInterval
			if interval == 1 {
				interval = 0
			}
			buf, err = postings.EncodeSkipped(entries, numSeqs, out.opts.StoreOffsets, interval)
		} else {
			buf, err = postings.Encode(entries, numSeqs, out.opts.StoreOffsets)
		}
		if err != nil {
			return err
		}
		out.dfs = append(out.dfs, uint32(len(entries)))
		out.offs = append(out.offs, uint64(len(out.blob)))
		out.lens = append(out.lens, uint32(len(buf)))
		out.blob = append(out.blob, buf...)
		return nil
	}
	for ai < len(a.terms) || bi < len(b.terms) {
		var term uint64
		takeA, takeB := false, false
		switch {
		case ai >= len(a.terms):
			term, takeB = b.terms[bi], true
		case bi >= len(b.terms):
			term, takeA = a.terms[ai], true
		case a.terms[ai] < b.terms[bi]:
			term, takeA = a.terms[ai], true
		case a.terms[ai] > b.terms[bi]:
			term, takeB = b.terms[bi], true
		default:
			term, takeA, takeB = a.terms[ai], true, true
		}
		entries = entries[:0]
		if takeA {
			list, err := a.Postings(kmer.Term(term))
			if err != nil {
				return nil, fmt.Errorf("index: merge term %d: %w", term, err)
			}
			entries = append(entries, list...)
			ai++
		}
		if takeB {
			list, err := b.Postings(kmer.Term(term))
			if err != nil {
				return nil, fmt.Errorf("index: merge term %d: %w", term, err)
			}
			for _, e := range list {
				e.ID += shift
				entries = append(entries, e)
			}
			bi++
		}
		out.terms = append(out.terms, term)
		if err := appendList(entries); err != nil {
			return nil, fmt.Errorf("index: merge term %d: %w", term, err)
		}
	}
	return out, nil
}

// BuildSegmented constructs the same index as Build but in segments of
// segmentSize sequences, merging as it goes. Peak transient memory is
// bounded by one segment's build state plus two indexes, instead of
// the whole collection's occurrence table — the recipe for indexing
// collections whose 8-bytes-per-base build state would not fit.
// The result is byte-identical to Build's, except under StopFraction,
// where stopping decisions become per-segment (see Merge).
func BuildSegmented(src Source, opts Options, segmentSize int) (*Index, error) {
	if segmentSize < 1 {
		return nil, fmt.Errorf("index: segment size %d must be positive", segmentSize)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var acc *Index
	for start := 0; start < src.Len() || acc == nil; start += segmentSize {
		end := start + segmentSize
		if end > src.Len() {
			end = src.Len()
		}
		seg, err := Build(&subSource{src, start, end}, opts)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = seg
			continue
		}
		acc, err = Merge(acc, seg)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// subSource exposes a contiguous id range of a Source as its own
// zero-based Source.
type subSource struct {
	src        Source
	start, end int
}

func (s *subSource) Len() int              { return s.end - s.start }
func (s *subSource) Sequence(i int) []byte { return s.src.Sequence(s.start + i) }

func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = append(out, b[j])
			j++
		case j >= len(b):
			out = append(out, a[i])
			i++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
