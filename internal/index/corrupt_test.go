package index

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// saveImage builds a real index over a deterministic store and returns
// its serialized bytes.
func saveImage(t *testing.T, opts Options) []byte {
	t.Helper()
	s := randomStore(417, 12, 250)
	idx, err := Build(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// walkIndex reads every posting list of an index to the end, returning
// the first decode error, so corruption that slips past the loader is
// still surfaced as an error rather than a panic.
func walkIndex(x *Index) error {
	var it postings.Iterator
	var firstErr error
	x.Terms(func(term kmer.Term, df int) {
		x.Reader(term, &it)
		for it.Next() {
		}
		if err := it.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// TestLoadCorruptImages flips bits and truncates a real serialized
// index at every position and requires the loader (and a full postings
// walk of anything it accepts) to fail with an error, never a panic.
// Payload corruption that no validation can distinguish from a valid
// image (a bit flip inside a posting list can decode to a different,
// equally plausible list) is allowed to pass silently; what is not
// allowed is a crash.
func TestLoadCorruptImages(t *testing.T) {
	for name, opts := range map[string]Options{
		"plain":   {K: 4},
		"offsets": {K: 5, StoreOffsets: true, SkipInterval: 4},
	} {
		t.Run(name, func(t *testing.T) {
			img := saveImage(t, opts)

			t.Run("truncate", func(t *testing.T) {
				for cut := 0; cut < len(img); cut++ {
					_, err := Load(bytes.NewReader(img[:cut]))
					if err == nil {
						t.Fatalf("truncation to %d of %d bytes loaded cleanly", cut, len(img))
					}
				}
			})

			t.Run("bitflip", func(t *testing.T) {
				step := 1
				if testing.Short() {
					// Exhaustive position coverage costs ~20s; a prime
					// stride still crosses every header section.
					step = 13
				}
				mut := make([]byte, len(img))
				for pos := 0; pos < len(img); pos += step {
					for bit := uint(0); bit < 8; bit++ {
						copy(mut, img)
						mut[pos] ^= 1 << bit
						x, err := Load(bytes.NewReader(mut))
						if err != nil {
							continue
						}
						// Accepted: every list must still be walkable;
						// decode errors are fine, panics are not.
						_ = walkIndex(x)
					}
				}
			})

			t.Run("double-length", func(t *testing.T) {
				// Appending garbage after a valid image must not disturb
				// the loaded index.
				grown := append(append([]byte{}, img...), bytes.Repeat([]byte{0xAB}, 64)...)
				x, err := Load(bytes.NewReader(grown))
				if err != nil {
					t.Fatalf("trailing garbage broke the load: %v", err)
				}
				if err := walkIndex(x); err != nil {
					t.Fatalf("walk after trailing garbage: %v", err)
				}
			})
		})
	}
}

// TestOpenDiskCorruptFiles runs the same discipline through the paged
// reader: a corrupt file on disk must produce errors, not panics, both
// at open time and when posting lists are fetched on demand.
func TestOpenDiskCorruptFiles(t *testing.T) {
	img := saveImage(t, Options{K: 5, StoreOffsets: true, SkipInterval: 4})
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("valid", func(t *testing.T) {
		x, err := OpenDisk(write("valid.idx", img))
		if err != nil {
			t.Fatal(err)
		}
		defer x.Close()
		if err := walkIndex(x); err != nil {
			t.Fatalf("walk of a valid disk index: %v", err)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		// Step 7 keeps the test fast while still crossing every header
		// section boundary.
		for cut := 0; cut < len(img); cut += 7 {
			x, err := OpenDisk(write("trunc.idx", img[:cut]))
			if err == nil {
				_ = walkIndex(x)
				if err := x.Close(); err != nil {
					t.Fatalf("close after truncated open: %v", err)
				}
				t.Fatalf("truncation to %d of %d bytes opened cleanly", cut, len(img))
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		step := 1
		if testing.Short() {
			step = 13
		}
		mut := make([]byte, len(img))
		for pos := 0; pos < len(img); pos += step {
			copy(mut, img)
			mut[pos] ^= 0x10
			x, err := OpenDisk(write("flip.idx", mut))
			if err != nil {
				continue
			}
			_ = walkIndex(x)
			if err := x.Close(); err != nil {
				t.Fatalf("close after bit flip at %d: %v", pos, err)
			}
		}
	})
}
