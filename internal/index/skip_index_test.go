package index

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

func randomStore(seed int64, n, length int) *db.Store {
	rng := rand.New(rand.NewSource(seed))
	var s db.Store
	for i := 0; i < n; i++ {
		seq := make([]byte, length)
		for j := range seq {
			seq[j] = byte(rng.Intn(dna.NumBases))
		}
		s.Add("r", seq)
	}
	return &s
}

func TestSkipIndexSamePostings(t *testing.T) {
	s := randomStore(91, 80, 400)
	plain, err := Build(s, Options{K: 5, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	skipped, err := Build(s, Options{K: 5, StoreOffsets: true, SkipInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumTermsIndexed() != skipped.NumTermsIndexed() {
		t.Fatalf("term counts differ: %d vs %d", plain.NumTermsIndexed(), skipped.NumTermsIndexed())
	}
	plain.Terms(func(term kmer.Term, df int) {
		a, err := plain.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		b, err := skipped.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("term %d postings differ between plain and skipped builds", term)
		}
	})
	// Skip structure costs space.
	if skipped.PostingsBytes() <= plain.PostingsBytes() {
		t.Errorf("skip-built postings %d not larger than plain %d",
			skipped.PostingsBytes(), plain.PostingsBytes())
	}
}

func TestSkipIndexReaderIteratesSame(t *testing.T) {
	s := randomStore(92, 50, 300)
	skipped, err := Build(s, Options{K: 5, SkipInterval: 1}) // √df heuristic
	if err != nil {
		t.Fatal(err)
	}
	var it postings.Iterator
	skipped.Terms(func(term kmer.Term, df int) {
		got := skipped.Reader(term, &it)
		if got != df {
			t.Fatalf("Reader df %d, lexicon df %d", got, df)
		}
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil || n != df {
			t.Fatalf("term %d: iterated %d of %d (%v)", term, n, df, it.Err())
		}
	})
}

func TestSkippedReaderSeek(t *testing.T) {
	s := randomStore(93, 200, 200)
	idx, err := Build(s, Options{K: 4, SkipInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	var term kmer.Term
	bestDF := 0
	idx.Terms(func(tm kmer.Term, df int) {
		if df > bestDF {
			term, bestDF = tm, df
		}
	})
	if bestDF < 10 {
		t.Fatalf("no dense term found (best df %d)", bestDF)
	}
	entries, err := idx.Postings(term)
	if err != nil {
		t.Fatal(err)
	}
	it, err := idx.SkippedReader(term)
	if err != nil {
		t.Fatal(err)
	}
	mid := entries[len(entries)/2].ID
	if !it.SeekGE(mid) || it.Entry().ID != mid {
		t.Fatalf("SeekGE(%d) missed", mid)
	}

	plainIdx, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plainIdx.SkippedReader(term); err == nil {
		t.Error("SkippedReader on plain index accepted")
	}
}

func TestSkipIndexSaveLoad(t *testing.T) {
	s := randomStore(94, 60, 300)
	idx, err := Build(s, Options{K: 5, StoreOffsets: true, SkipInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options() != idx.Options() {
		t.Fatalf("options = %+v, want %+v", got.Options(), idx.Options())
	}
	// Seek still works after reload.
	var term kmer.Term
	bestDF := 0
	got.Terms(func(tm kmer.Term, df int) {
		if df > bestDF {
			term, bestDF = tm, df
		}
	})
	it, err := got.SkippedReader(term)
	if err != nil {
		t.Fatal(err)
	}
	if !it.SeekGE(0) {
		t.Error("reloaded skip index cannot seek")
	}
}

func intersectNaive(t *testing.T, x *Index, terms []kmer.Term) []int {
	t.Helper()
	counts := map[uint32]int{}
	for _, term := range terms {
		entries, err := x.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			counts[e.ID]++
		}
	}
	var out []int
	for id, n := range counts {
		if n == len(terms) {
			out = append(out, int(id))
		}
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestIntersectTerms(t *testing.T) {
	s := randomStore(95, 300, 400)
	for _, opts := range []Options{{K: 4}, {K: 4, SkipInterval: 1}} {
		idx, err := Build(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(96))
		coder := idx.Coder()
		for trial := 0; trial < 20; trial++ {
			nTerms := 2 + rng.Intn(3)
			terms := make([]kmer.Term, nTerms)
			for i := range terms {
				terms[i] = kmer.Term(rng.Intn(int(coder.NumTerms())))
			}
			got, err := idx.IntersectTerms(terms)
			if err != nil {
				t.Fatal(err)
			}
			want := intersectNaive(t, idx, dedupTerms(terms))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("skip=%d terms=%v: got %v, want %v", opts.SkipInterval, terms, got, want)
			}
		}
		// Degenerate inputs.
		if got, err := idx.IntersectTerms(nil); err != nil || got != nil {
			t.Errorf("empty term set: %v, %v", got, err)
		}
		missing := kmer.Term(0)
		found := false
		for !found {
			if idx.DF(missing) == 0 {
				found = true
			} else {
				missing++
			}
		}
		if got, err := idx.IntersectTerms([]kmer.Term{missing}); err != nil || len(got) != 0 {
			t.Errorf("absent term intersection: %v, %v", got, err)
		}
	}
}

// dedupTerms mirrors IntersectTerms' tolerance of duplicates: the
// naive reference counts a sequence once per distinct term.
func dedupTerms(terms []kmer.Term) []kmer.Term {
	seen := map[kmer.Term]bool{}
	var out []kmer.Term
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func TestParallelBuildDeterministic(t *testing.T) {
	s := randomStore(97, 100, 500)
	opts := Options{K: 6, StoreOffsets: true}
	serial := opts
	serial.Workers = 1
	parallel := opts
	parallel.Workers = 8

	a, err := Build(s, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s, parallel)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("serial and parallel builds serialize differently")
	}
}
