package index

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// craftHeader builds an index image prefix: the magic followed by the
// given uvarint fields, in header order (K, offsets flag, stop
// fraction, skip interval, mask length, [sequence count], ...). The
// image is deliberately truncated after the last field — every test
// case below must fail on a bounds check before reaching the missing
// sections.
func craftHeader(fields ...uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(indexMagic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range fields {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	return buf.Bytes()
}

// TestLoadHeaderBounds is the regression suite for the uvarint→int
// truncation bug: header fields were converted with int(...) before
// any width check, so on a 32-bit platform an adversarial K of
// 1<<32+9 decoded as a plausible 9. Every field must now be rejected
// at full uint64 width, with an error that names the field rather
// than a downstream read failure.
func TestLoadHeaderBounds(t *testing.T) {
	cases := []struct {
		name   string
		fields []uint64
		want   string
	}{
		// 1<<32+9 truncates to int32 9, a legal K; 1<<32 truncates to 0.
		{"k-wraps-32bit", []uint64{1<<32 + 9, 0, 0, 0, 0}, "interval length"},
		{"k-zero-wrap", []uint64{1 << 32, 0, 0, 0, 0}, "interval length"},
		{"k-huge", []uint64{1 << 60, 0, 0, 0, 0}, "interval length"},
		{"stopfrac-above-unit", []uint64{9, 0, 2_000_000, 0, 0}, "stop fraction"},
		{"stopfrac-wraps", []uint64{9, 0, 1 << 33, 0, 0}, "stop fraction"},
		{"skip-wraps-32bit", []uint64{9, 0, 0, 1<<32 + 7, 0}, "skip interval"},
		{"skip-huge", []uint64{9, 0, 0, 1 << 50, 0}, "skip interval"},
		{"mask-huge", []uint64{9, 0, 0, 0, 1 << 40}, "mask length"},
		// numSeqs 1<<33 wraps int32 sequence IDs; previously only
		// > 1<<40 was rejected.
		{"numseqs-wraps-int32", []uint64{9, 0, 0, 0, 0, 1 << 33}, "sequence count"},
		{"numseqs-huge", []uint64{9, 0, 0, 0, 0, 1 << 39}, "sequence count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(craftHeader(tc.fields...)))
			if err == nil {
				t.Fatal("adversarial header accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadHeaderBoundsAcceptsValid pins that the new full-width checks
// don't reject the legal extremes: the largest K, a full stop
// fraction, and a large-but-sane skip interval must get past the
// header (failing later, on the truncated body, with a read error).
func TestLoadHeaderBoundsAcceptsValid(t *testing.T) {
	for _, fields := range [][]uint64{
		{MaxK, 1, 1_000_000, 1 << 20, 0},
		{1, 0, 0, 0, 0},
	} {
		_, err := Load(bytes.NewReader(craftHeader(fields...)))
		if err == nil {
			t.Fatal("truncated image loaded successfully")
		}
		for _, field := range []string{"interval length", "stop fraction", "skip interval"} {
			if strings.Contains(err.Error(), field) {
				t.Fatalf("legal header rejected by bounds check: %v", err)
			}
		}
	}
}
