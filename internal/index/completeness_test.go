package index

import (
	"testing"

	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// TestIndexCompleteness asserts the defining invariant of the inverted
// index: every interval occurrence in every sequence is findable
// through its term's posting list (unless stopped), with the exact
// offset when offsets are stored — and nothing else is.
func TestIndexCompleteness(t *testing.T) {
	for _, opts := range []Options{
		{K: 4, StoreOffsets: true},
		{K: 7, StoreOffsets: true},
		{K: 5, StoreOffsets: true, StopFraction: 0.02},
		{K: 5, StoreOffsets: true, SkipInterval: 3},
		{SpacedMask: "110101", StoreOffsets: true},
	} {
		s := randomStore(231+int64(opts.K), 30, 250)
		idx, err := Build(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		coder := idx.Coder()

		// Forward direction: every occurrence is indexed.
		missing := 0
		for id := 0; id < s.Len(); id++ {
			seq := s.Sequence(id)
			coder.ExtractFunc(seq, func(pos int, term kmer.Term) {
				if idx.Stopped(term) {
					return
				}
				entries, err := idx.Postings(term)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if int(e.ID) != id {
						continue
					}
					for _, off := range e.Offsets {
						if int(off) == pos {
							return
						}
					}
				}
				missing++
			})
		}
		if missing > 0 {
			t.Fatalf("opts %+v: %d occurrences missing from the index", opts, missing)
		}

		// Reverse direction: every posting corresponds to a real
		// occurrence, and document frequencies match entry counts.
		idx.Terms(func(term kmer.Term, df int) {
			entries, err := idx.Postings(term)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != df {
				t.Fatalf("term %d: %d entries, lexicon df %d", term, len(entries), df)
			}
			for _, e := range entries {
				seq := s.Sequence(int(e.ID))
				for _, off := range e.Offsets {
					if got := coder.Encode(seq[off:]); got != term {
						t.Fatalf("term %d: offset %d in seq %d encodes to %d", term, off, e.ID, got)
					}
				}
				if int(e.Count) != len(e.Offsets) {
					t.Fatalf("term %d: count %d vs %d offsets", term, e.Count, len(e.Offsets))
				}
			}
		})
	}
}

// TestIndexTotalsConsistent cross-checks aggregate counters against a
// full walk.
func TestIndexTotalsConsistent(t *testing.T) {
	s := randomStore(241, 40, 300)
	idx, err := Build(s, Options{K: 6, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	walkPostings, walkTerms := 0, 0
	var it postings.Iterator
	idx.Terms(func(term kmer.Term, df int) {
		walkTerms++
		got := idx.Reader(term, &it)
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if n != got {
			t.Fatalf("term %d: iterated %d, df %d", term, n, got)
		}
		walkPostings += n
	})
	if walkTerms != idx.NumTermsIndexed() {
		t.Errorf("walked %d terms, NumTermsIndexed %d", walkTerms, idx.NumTermsIndexed())
	}
	if walkPostings != idx.TotalPostings() {
		t.Errorf("walked %d postings, TotalPostings %d", walkPostings, idx.TotalPostings())
	}
	// Total occurrences equal the collection's interval count minus
	// nothing (no stopping here).
	coder := idx.Coder()
	wantOcc := 0
	for id := 0; id < s.Len(); id++ {
		wantOcc += coder.NumIntervals(s.SeqLen(id))
	}
	gotOcc := 0
	idx.Terms(func(term kmer.Term, df int) {
		entries, err := idx.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			gotOcc += int(e.Count)
		}
	})
	if gotOcc != wantOcc {
		t.Errorf("indexed %d occurrences, collection has %d", gotOcc, wantOcc)
	}
}
