package index

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// saveToFile writes idx into a temp file and returns its path.
func saveToFile(t *testing.T, idx *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "idx.ndx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenDiskMatchesLoad(t *testing.T) {
	s := randomStore(181, 60, 300)
	for _, opts := range []Options{
		{K: 5, StoreOffsets: true},
		{K: 5, SkipInterval: 4},
	} {
		built, err := Build(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		path := saveToFile(t, built)
		disk, err := OpenDisk(path)
		if err != nil {
			t.Fatal(err)
		}
		if !disk.Disk() {
			t.Fatal("OpenDisk index not marked disk-backed")
		}
		if disk.NumSeqs() != built.NumSeqs() || disk.NumTermsIndexed() != built.NumTermsIndexed() ||
			disk.PostingsBytes() != built.PostingsBytes() {
			t.Fatalf("disk index shape differs")
		}
		built.Terms(func(term kmer.Term, df int) {
			want, err := built.Postings(term)
			if err != nil {
				t.Fatal(err)
			}
			got, err := disk.Postings(term)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("term %d postings differ on disk", term)
			}
		})
		if opts.SkipInterval > 0 {
			// Seeks work against the disk too.
			var term kmer.Term
			bestDF := 0
			disk.Terms(func(tm kmer.Term, df int) {
				if df > bestDF {
					term, bestDF = tm, df
				}
			})
			it, err := disk.SkippedReader(term)
			if err != nil {
				t.Fatal(err)
			}
			if !it.SeekGE(0) {
				t.Error("disk skip seek failed")
			}
		}
		if err := disk.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := disk.Postings(kmer.Term(0)); err == nil {
			if got, _ := disk.Postings(kmer.Term(0)); got != nil {
				t.Error("read after Close returned data")
			}
		}
	}
}

func TestOpenDiskConcurrentReads(t *testing.T) {
	s := randomStore(182, 100, 400)
	built, err := Build(s, Options{K: 5, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	path := saveToFile(t, built)
	disk, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	var terms []kmer.Term
	disk.Terms(func(tm kmer.Term, df int) { terms = append(terms, tm) })
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			var it postings.Iterator
			for i := start; i < len(terms); i += 8 {
				df := disk.Reader(terms[i], &it)
				n := 0
				for it.Next() {
					n++
				}
				if it.Err() != nil {
					errs <- it.Err()
					return
				}
				if n != df {
					errs <- os.ErrInvalid
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestOpenDiskErrors(t *testing.T) {
	if _, err := OpenDisk(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	// Truncated file: header parses but blob is short.
	s := randomStore(183, 20, 200)
	built, err := Build(s, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := saveToFile(t, built)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.ndx")
	if err := os.WriteFile(short, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(short); err == nil {
		t.Error("truncated blob accepted")
	}
}

func TestDiskIndexSaveRefused(t *testing.T) {
	s := randomStore(184, 10, 200)
	built, err := Build(s, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDisk(saveToFile(t, built))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if err := disk.Save(os.Stderr); err == nil {
		t.Error("Save on disk index accepted")
	}
}
