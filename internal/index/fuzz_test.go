package index

import (
	"bytes"
	"testing"

	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// FuzzLoad feeds arbitrary bytes to the index loader: it must reject
// garbage with an error — never panic, hang, or allocate absurdly.
func FuzzLoad(f *testing.F) {
	s := randomStore(111, 10, 200)
	for _, opts := range []Options{{K: 4}, {K: 5, StoreOffsets: true, SkipInterval: 4}} {
		idx, err := Build(s, opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Seed a few corruptions of a valid image.
		for _, cut := range []int{8, 16, buf.Len() / 2} {
			f.Add(buf.Bytes()[:cut])
		}
		mangled := append([]byte{}, buf.Bytes()...)
		for i := 10; i < len(mangled); i += 7 {
			mangled[i] ^= 0x55
		}
		f.Add(mangled)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be walkable without panicking; the
		// posting decoders may report corruption but must stay inside
		// their buffers.
		var it postings.Iterator
		idx.Terms(func(term kmer.Term, df int) {
			got := idx.Reader(term, &it)
			if got != df {
				t.Fatalf("Reader df %d, lexicon df %d", got, df)
			}
			n := 0
			for it.Next() && n <= df {
				n++
			}
			_ = it.Err() // errors are acceptable on fuzzed input; panics are not
		})
	})
}
