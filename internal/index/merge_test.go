package index

import (
	"bytes"
	"testing"

	"nucleodb/internal/db"
	"nucleodb/internal/dna"
)

// concatStores builds a store containing a's records then b's.
func concatStores(a, b *db.Store) *db.Store {
	var out db.Store
	for i := 0; i < a.Len(); i++ {
		out.Add(a.Desc(i), a.Sequence(i))
	}
	for i := 0; i < b.Len(); i++ {
		out.Add(b.Desc(i), b.Sequence(i))
	}
	return &out
}

func TestMergeEqualsCombinedBuild(t *testing.T) {
	sa := randomStore(141, 30, 300)
	sb := randomStore(142, 40, 250)
	for _, opts := range []Options{
		{K: 5},
		{K: 5, StoreOffsets: true},
		{K: 5, StoreOffsets: true, SkipInterval: 4},
	} {
		ia, err := Build(sa, opts)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := Build(sb, opts)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := Merge(ia, ib)
		if err != nil {
			t.Fatal(err)
		}
		combined, err := Build(concatStores(sa, sb), opts)
		if err != nil {
			t.Fatal(err)
		}
		// The merged index must serialize byte-identically to the
		// combined build (no stopping involved here).
		var mb, cb bytes.Buffer
		if err := merged.Save(&mb); err != nil {
			t.Fatal(err)
		}
		if err := combined.Save(&cb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mb.Bytes(), cb.Bytes()) {
			t.Fatalf("opts %+v: merged index differs from combined build", opts)
		}
	}
}

func TestMergeRejectsMismatchedOptions(t *testing.T) {
	s := randomStore(143, 10, 200)
	a, err := Build(s, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched K accepted")
	}
	c, err := Build(s, Options{K: 5, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, c); err == nil {
		t.Error("mismatched offsets accepted")
	}
}

func TestMergeWithEmptySegment(t *testing.T) {
	s := randomStore(144, 20, 200)
	var empty db.Store
	a, err := Build(s, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(&empty, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, e)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSeqs() != a.NumSeqs() || m.NumTermsIndexed() != a.NumTermsIndexed() {
		t.Errorf("merge with empty changed shape: %d/%d", m.NumSeqs(), m.NumTermsIndexed())
	}
	// Order matters for ids: empty-first shifts nothing either.
	m2, err := Merge(e, a)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumSeqs() != a.NumSeqs() {
		t.Errorf("empty-first merge NumSeqs = %d", m2.NumSeqs())
	}
}

func TestBuildSegmentedEqualsBuild(t *testing.T) {
	s := randomStore(151, 55, 300)
	opts := Options{K: 5, StoreOffsets: true}
	direct, err := Build(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, segSize := range []int{1, 7, 20, 55, 100} {
		segmented, err := BuildSegmented(s, opts, segSize)
		if err != nil {
			t.Fatalf("segment size %d: %v", segSize, err)
		}
		var a, b bytes.Buffer
		if err := direct.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := segmented.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("segment size %d: segmented build differs from direct", segSize)
		}
	}
	if _, err := BuildSegmented(s, opts, 0); err == nil {
		t.Error("zero segment size accepted")
	}
}

func TestBuildSegmentedEmptySource(t *testing.T) {
	var empty db.Store
	idx, err := BuildSegmented(&empty, Options{K: 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumSeqs() != 0 || idx.NumTermsIndexed() != 0 {
		t.Errorf("empty segmented build: %d seqs, %d terms", idx.NumSeqs(), idx.NumTermsIndexed())
	}
}

func TestMergeUnionsStopLists(t *testing.T) {
	// Two segments with different dominant terms stop different sets;
	// the merge carries the union.
	var sa, sb db.Store
	sa.Add("a", dna.MustEncode("AAAAAAAAAAAAAAAAAAAAAAAA"))
	sa.Add("a2", dna.MustEncode("ACGTACGTACGTACGT"))
	sb.Add("b", dna.MustEncode("CCCCCCCCCCCCCCCCCCCCCCCC"))
	sb.Add("b2", dna.MustEncode("ACGTACGTACGTACGT"))
	opts := Options{K: 4, StopFraction: 0.05}
	ia, err := Build(&sa, opts)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Build(&sb, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ia.NumStopped() == 0 || ib.NumStopped() == 0 {
		t.Skip("stopping did not trigger on this data")
	}
	m, err := Merge(ia, ib)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStopped() < ia.NumStopped() || m.NumStopped() < ib.NumStopped() {
		t.Errorf("merged stop list %d smaller than inputs %d/%d",
			m.NumStopped(), ia.NumStopped(), ib.NumStopped())
	}
}
