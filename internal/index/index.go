// Package index implements the inverted interval index: a lexicon
// mapping each interval term to its compressed posting list, the
// two-pass build pipeline that constructs it from a sequence store, and
// an on-disk format. Index stopping — discarding the most frequent
// intervals, which carry little discriminating power but account for a
// disproportionate share of index size and query cost — is applied at
// build time.
package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"nucleodb/internal/compress"
	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// Source supplies the sequences to index. *db.Store satisfies it.
type Source interface {
	// Len returns the number of sequences.
	Len() int
	// Sequence returns sequence i in code form.
	Sequence(i int) []byte
}

// Options configures an index build.
type Options struct {
	// K is the interval length, in [1, kmer.MaxK]. The paper's
	// experiments centre on lengths around 8–12.
	K int
	// StoreOffsets selects whether in-sequence occurrence offsets are
	// kept in the posting lists. Offsets enable diagonal (FRAMES-style)
	// coarse scoring at the cost of a larger index.
	StoreOffsets bool
	// StopFraction is the fraction of distinct terms, most frequent
	// first, to discard from the index ("index stopping"). 0 keeps
	// everything.
	StopFraction float64
	// SpacedMask, when non-empty, indexes spaced seeds instead of
	// contiguous intervals: the mask's '1' positions (e.g.
	// "1110100101") are sampled from each window. K is ignored in
	// favour of the mask's weight. Spaced seeds trade a slightly
	// larger window for markedly better sensitivity to diverged
	// homologies (PatternHunter).
	SpacedMask string
	// SkipInterval, when positive, stores a synchronisation point
	// every SkipInterval entries in each posting list (self-indexing),
	// enabling SeekGE-based conjunctive processing at a small size
	// cost. A value of 1 uses the √df heuristic per list. 0 stores
	// plain lists.
	SkipInterval int
	// Workers bounds build parallelism for the list-encoding phase.
	// 0 uses GOMAXPROCS; 1 forces a serial build. Output is identical
	// regardless of the worker count.
	Workers int
}

// DefaultOptions returns the configuration used by the headline
// experiments: 9-base intervals, offsets stored, no stopping.
func DefaultOptions() Options {
	return Options{K: 9, StoreOffsets: true}
}

// MaxK is the longest indexable interval. The build pipeline and the
// term statistics use dense arrays over the 4^K vocabulary, which is
// practical up to K = 12 (about 134 MB of transient build state).
const MaxK = 12

// coder constructs the interval coder the options select.
func (o Options) coder() (*kmer.Coder, error) {
	if o.SpacedMask != "" {
		return kmer.NewSpacedCoder(o.SpacedMask)
	}
	return kmer.NewCoder(o.K)
}

func (o Options) validate() error {
	if o.SpacedMask != "" {
		c, err := o.coder()
		if err != nil {
			return fmt.Errorf("index: %w", err)
		}
		if c.K() > MaxK {
			return fmt.Errorf("index: spaced mask weight %d above %d", c.K(), MaxK)
		}
	} else if o.K < 1 || o.K > MaxK {
		return fmt.Errorf("index: interval length %d outside [1,%d]", o.K, MaxK)
	}
	if o.StopFraction < 0 || o.StopFraction > 1 {
		return fmt.Errorf("index: stop fraction %v outside [0,1]", o.StopFraction)
	}
	if o.SkipInterval < 0 {
		return fmt.Errorf("index: negative skip interval %d", o.SkipInterval)
	}
	if o.Workers < 0 {
		return fmt.Errorf("index: negative worker count %d", o.Workers)
	}
	return nil
}

// Index is an immutable inverted interval index over a sequence store.
type Index struct {
	opts    Options
	coder   *kmer.Coder
	numSeqs int
	seqLens []int32

	// Lexicon: parallel arrays sorted by term. A term absent from
	// these arrays either never occurs or was stopped.
	terms []uint64
	dfs   []uint32
	offs  []uint64 // byte offset of each list in blob
	lens  []uint32 // byte length of each list

	blob []byte

	stopped []uint64 // sorted stopped terms

	// Disk-backed access (see OpenDisk): when fetch is non-nil, blob
	// is empty and list bytes are read on demand.
	fetch   func(off uint64, n uint32) ([]byte, error)
	blobLen int
	closer  interface{ Close() error }
}

// Build constructs an index over src.
//
// The pipeline is two passes over the collection: the first counts term
// frequencies (sizing the posting buckets exactly and selecting the
// stop set), the second distributes occurrences into the buckets in
// (sequence, offset) order so each list can be compressed directly.
func Build(src Source, opts Options) (*Index, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	coder, err := opts.coder()
	if err != nil {
		return nil, err
	}
	opts.K = coder.K() // normalise: spaced masks define K by weight
	numSeqs := src.Len()

	// Pass 1: term frequencies and sequence lengths.
	stats := kmer.NewStats(coder)
	seqLens := make([]int32, numSeqs)
	for id := 0; id < numSeqs; id++ {
		seq := src.Sequence(id)
		seqLens[id] = int32(len(seq))
		stats.Add(seq)
	}

	stopSet := stats.TopFraction(opts.StopFraction)
	stopped := make([]uint64, 0, len(stopSet))
	for t := range stopSet {
		stopped = append(stopped, uint64(t))
	}
	sort.Slice(stopped, func(i, j int) bool { return stopped[i] < stopped[j] })

	// Bucket sizing: prefix sums of per-term occurrence counts,
	// excluding stopped terms.
	numTerms := coder.NumTerms()
	starts := make([]uint64, numTerms+1)
	for t := uint64(0); t < numTerms; t++ {
		c := uint64(stats.Count(kmer.Term(t)))
		if stopSet[kmer.Term(t)] {
			c = 0
		}
		starts[t+1] = starts[t] + c
	}
	totalOcc := starts[numTerms]

	// Pass 2: distribute occurrences. Each element packs
	// (sequence id << 32 | offset); filling in scan order keeps each
	// bucket sorted by (id, offset).
	occ := make([]uint64, totalOcc)
	fill := make([]uint64, numTerms)
	copy(fill, starts[:numTerms])
	for id := 0; id < numSeqs; id++ {
		seq := src.Sequence(id)
		sid := uint64(id) << 32
		coder.ExtractFunc(seq, func(pos int, t kmer.Term) {
			if stopSet[t] {
				return
			}
			occ[fill[t]] = sid | uint64(uint32(pos))
			fill[t]++
		})
	}

	// Encode each non-empty bucket as a compressed posting list,
	// sharding the term space across workers; shards are merged in
	// term order so the result is identical at any parallelism.
	idx := &Index{
		opts:    opts,
		coder:   coder,
		numSeqs: numSeqs,
		seqLens: seqLens,
		stopped: stopped,
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > int(numTerms) {
		workers = int(numTerms)
	}
	shards := make([]encodeShard, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := numTerms * uint64(wi) / uint64(workers)
		hi := numTerms * uint64(wi+1) / uint64(workers)
		wg.Add(1)
		go func(sh *encodeShard, lo, hi uint64) {
			defer wg.Done()
			sh.err = sh.encodeRange(occ, starts, lo, hi, numSeqs, opts)
		}(&shards[wi], lo, hi)
	}
	wg.Wait()
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
	}
	total := 0
	terms := 0
	for _, sh := range shards {
		total += len(sh.blob)
		terms += len(sh.terms)
	}
	idx.terms = make([]uint64, 0, terms)
	idx.dfs = make([]uint32, 0, terms)
	idx.offs = make([]uint64, 0, terms)
	idx.lens = make([]uint32, 0, terms)
	idx.blob = make([]byte, 0, total)
	for _, sh := range shards {
		base := uint64(len(idx.blob))
		idx.terms = append(idx.terms, sh.terms...)
		idx.dfs = append(idx.dfs, sh.dfs...)
		for _, l := range sh.lens {
			idx.offs = append(idx.offs, base)
			idx.lens = append(idx.lens, l)
			base += uint64(l)
		}
		idx.blob = append(idx.blob, sh.blob...)
	}
	return idx, nil
}

// encodeShard accumulates one worker's contiguous term range.
type encodeShard struct {
	terms []uint64
	dfs   []uint32
	lens  []uint32
	blob  []byte
	err   error
}

// encodeRange encodes every non-empty bucket in [lo, hi).
func (sh *encodeShard) encodeRange(occ, starts []uint64, lo, hi uint64, numSeqs int, opts Options) error {
	var entries []postings.Entry
	for t := lo; t < hi; t++ {
		bucket := occ[starts[t]:starts[t+1]]
		if len(bucket) == 0 {
			continue
		}
		entries = entries[:0]
		for _, packed := range bucket {
			id := uint32(packed >> 32)
			off := uint32(packed)
			if n := len(entries); n > 0 && entries[n-1].ID == id {
				entries[n-1].Count++
				if opts.StoreOffsets {
					entries[n-1].Offsets = append(entries[n-1].Offsets, off)
				}
				continue
			}
			e := postings.Entry{ID: id, Count: 1}
			if opts.StoreOffsets {
				e.Offsets = []uint32{off}
			}
			entries = append(entries, e)
		}
		var buf []byte
		var err error
		if opts.SkipInterval > 0 {
			interval := opts.SkipInterval
			if interval == 1 {
				interval = 0 // EncodeSkipped's √df heuristic
			}
			buf, err = postings.EncodeSkipped(entries, numSeqs, opts.StoreOffsets, interval)
		} else {
			buf, err = postings.Encode(entries, numSeqs, opts.StoreOffsets)
		}
		if err != nil {
			return fmt.Errorf("index: term %d: %w", t, err)
		}
		sh.terms = append(sh.terms, t)
		sh.dfs = append(sh.dfs, uint32(len(entries)))
		sh.lens = append(sh.lens, uint32(len(buf)))
		sh.blob = append(sh.blob, buf...)
	}
	return nil
}

// Options returns the build options of the index.
func (x *Index) Options() Options { return x.opts }

// CoarseBackendName identifies the inverted index as the postings
// coarse backend (core.CoarseIndex).
func (x *Index) CoarseBackendName() string { return "postings" }

// K returns the interval length.
func (x *Index) K() int { return x.opts.K }

// Coder returns the interval coder matching the index's interval length.
func (x *Index) Coder() *kmer.Coder { return x.coder }

// NumSeqs returns the number of indexed sequences.
func (x *Index) NumSeqs() int { return x.numSeqs }

// SeqLen returns the length in bases of sequence id.
func (x *Index) SeqLen(id int) int { return int(x.seqLens[id]) }

// NumTermsIndexed returns the number of distinct terms with posting
// lists (after stopping).
func (x *Index) NumTermsIndexed() int { return len(x.terms) }

// NumStopped returns the number of stopped terms.
func (x *Index) NumStopped() int { return len(x.stopped) }

// PostingsBytes returns the size of the compressed posting data.
func (x *Index) PostingsBytes() int {
	if x.fetch != nil {
		return x.blobLen
	}
	return len(x.blob)
}

// listBytes returns the raw encoded bytes of lexicon slot i, from
// memory or disk.
func (x *Index) listBytes(i int) ([]byte, error) {
	if x.fetch != nil {
		return x.fetch(x.offs[i], x.lens[i])
	}
	return x.blob[x.offs[i] : x.offs[i]+uint64(x.lens[i])], nil
}

// TotalPostings returns the number of (term, sequence) postings across
// all lists — what an uncompressed inverted file would store one record
// per.
func (x *Index) TotalPostings() int {
	n := 0
	for _, df := range x.dfs {
		n += int(df)
	}
	return n
}

// Terms calls fn for every indexed term in ascending order.
func (x *Index) Terms(fn func(t kmer.Term, df int)) {
	for i, t := range x.terms {
		fn(kmer.Term(t), int(x.dfs[i]))
	}
}

// LexiconBytes returns the in-memory size of the lexicon arrays.
func (x *Index) LexiconBytes() int {
	return len(x.terms)*8 + len(x.dfs)*4 + len(x.offs)*8 + len(x.lens)*4
}

// SizeBytes returns the total index size: lexicon, postings, stop list
// and sequence-length table. For a disk-opened index the postings
// component is the on-disk blob size, not resident memory.
func (x *Index) SizeBytes() int {
	return x.LexiconBytes() + x.PostingsBytes() + len(x.stopped)*8 + len(x.seqLens)*4
}

// lookup returns the lexicon slot of term t, or -1.
func (x *Index) lookup(t kmer.Term) int {
	i := sort.Search(len(x.terms), func(i int) bool { return x.terms[i] >= uint64(t) })
	if i < len(x.terms) && x.terms[i] == uint64(t) {
		return i
	}
	return -1
}

// DF returns the document frequency (number of sequences containing)
// of term t, 0 if unindexed or stopped.
func (x *Index) DF(t kmer.Term) int {
	if i := x.lookup(t); i >= 0 {
		return int(x.dfs[i])
	}
	return 0
}

// Stopped reports whether term t was discarded by index stopping.
func (x *Index) Stopped(t kmer.Term) bool {
	i := sort.Search(len(x.stopped), func(i int) bool { return x.stopped[i] >= uint64(t) })
	return i < len(x.stopped) && x.stopped[i] == uint64(t)
}

// listPayload returns the plain-encoded payload of lexicon slot i,
// stepping over the skip header when the index stores skipped lists.
func (x *Index) listPayload(i int) ([]byte, error) {
	buf, err := x.listBytes(i)
	if err != nil {
		return nil, err
	}
	if x.opts.SkipInterval == 0 {
		return buf, nil
	}
	hlen, n, err := compress.GetVByte(buf)
	if err != nil {
		return nil, fmt.Errorf("index: term slot %d skip header: %w", i, err)
	}
	if uint64(len(buf)-n) < hlen {
		return nil, fmt.Errorf("index: term slot %d truncated skip header", i)
	}
	return buf[n+int(hlen):], nil
}

// Reader positions it over the posting list of term t and returns the
// document frequency (0 when the term has no list; the iterator is then
// empty). The iterator is owned by the caller and may be reused across
// terms. Skip-encoded lists iterate identically; use SkippedReader for
// SeekGE access.
func (x *Index) Reader(t kmer.Term, it *postings.Iterator) int {
	df, _ := x.ReaderStats(t, it)
	return df
}

// ReaderStats positions it like Reader and additionally reports the
// compressed byte size of the list handed to the iterator — the I/O
// cost the query-pipeline stats account for, free to report here
// because the buffer is already in hand. bytes is what a paged index
// read from disk for this term (zero for absent terms).
func (x *Index) ReaderStats(t kmer.Term, it *postings.Iterator) (df, bytes int) {
	i := x.lookup(t)
	if i < 0 {
		it.Reset(nil, 0, x.numSeqs, x.opts.StoreOffsets)
		return 0, 0
	}
	payload, err := x.listPayload(i)
	if err != nil {
		// The blob was written by Build/validated by Load; a bad
		// header here is internal corruption, surfaced via the
		// iterator's error channel by handing it a truncated buffer.
		it.Reset(nil, int(x.dfs[i]), x.numSeqs, x.opts.StoreOffsets)
		return int(x.dfs[i]), 0
	}
	it.Reset(payload, int(x.dfs[i]), x.numSeqs, x.opts.StoreOffsets)
	return int(x.dfs[i]), len(payload)
}

// SkippedReader returns a seekable iterator over term t's list, or nil
// when the term has no list. It requires an index built with
// SkipInterval > 0.
func (x *Index) SkippedReader(t kmer.Term) (*postings.SkipIterator, error) {
	if x.opts.SkipInterval == 0 {
		return nil, fmt.Errorf("index: SkippedReader needs an index built with SkipInterval > 0")
	}
	i := x.lookup(t)
	if i < 0 {
		return nil, nil
	}
	buf, err := x.listBytes(i)
	if err != nil {
		return nil, err
	}
	sl, err := postings.OpenSkipped(buf, int(x.dfs[i]), x.numSeqs, x.opts.StoreOffsets)
	if err != nil {
		return nil, fmt.Errorf("index: term %d: %w", t, err)
	}
	return sl.Iter(), nil
}

// Postings decodes and returns the full posting list of term t.
// Intended for tests and tools; query evaluation uses Reader.
func (x *Index) Postings(t kmer.Term) ([]postings.Entry, error) {
	i := x.lookup(t)
	if i < 0 {
		return nil, nil
	}
	payload, err := x.listPayload(i)
	if err != nil {
		return nil, err
	}
	return postings.Decode(payload, int(x.dfs[i]), x.numSeqs, x.opts.StoreOffsets)
}

// IntersectTerms returns the ids of sequences containing every one of
// the given terms, ascending. With a skip-built index it leapfrogs via
// SeekGE, visiting only a fraction of the longer lists; otherwise it
// falls back to a full merge. Terms with no postings make the result
// empty. Duplicate terms are permitted.
func (x *Index) IntersectTerms(terms []kmer.Term) ([]int, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	// Rarest-first ordering minimises work for both strategies.
	sorted := append([]kmer.Term(nil), terms...)
	sort.Slice(sorted, func(i, j int) bool { return x.DF(sorted[i]) < x.DF(sorted[j]) })
	if x.DF(sorted[0]) == 0 {
		return nil, nil
	}

	if x.opts.SkipInterval > 0 {
		return x.intersectSkipped(sorted)
	}
	return x.intersectMerge(sorted)
}

func (x *Index) intersectSkipped(terms []kmer.Term) ([]int, error) {
	its := make([]*postings.SkipIterator, len(terms))
	for i, t := range terms {
		it, err := x.SkippedReader(t)
		if err != nil {
			return nil, err
		}
		if it == nil {
			return nil, nil
		}
		its[i] = it
	}
	var out []int
	// Drive from the rarest list; leapfrog the others.
	lead := its[0]
outer:
	for lead.Next() {
		id := lead.Entry().ID
		for _, it := range its[1:] {
			if !it.SeekGE(id) {
				break outer
			}
			if got := it.Entry().ID; got != id {
				// Candidate absent from this list: advance the lead
				// past it on the next iteration.
				continue outer
			}
		}
		out = append(out, int(id))
	}
	for _, it := range its {
		if err := it.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (x *Index) intersectMerge(terms []kmer.Term) ([]int, error) {
	// Decode the rarest list as the candidate set, then filter through
	// each remaining list with a linear merge.
	first, err := x.Postings(terms[0])
	if err != nil {
		return nil, err
	}
	candidates := make([]uint32, len(first))
	for i, e := range first {
		candidates[i] = e.ID
	}
	var it postings.Iterator
	for _, t := range terms[1:] {
		if len(candidates) == 0 {
			return nil, nil
		}
		x.Reader(t, &it)
		kept := candidates[:0]
		ci := 0
		for it.Next() && ci < len(candidates) {
			id := it.Entry().ID
			for ci < len(candidates) && candidates[ci] < id {
				ci++
			}
			if ci < len(candidates) && candidates[ci] == id {
				kept = append(kept, id)
				ci++
			}
		}
		if err := it.Err(); err != nil {
			return nil, err
		}
		candidates = kept
	}
	out := make([]int, len(candidates))
	for i, id := range candidates {
		out[i] = int(id)
	}
	return out, nil
}
