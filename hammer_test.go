package nucleodb

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestSegmentedConcurrentHammer races the whole mutation surface
// against searches: concurrent readers (single and batch), an append
// stream, deletes, and the background compactor all run at once over a
// persisted segmented directory, with no quiescing — the snapshot-swap
// contract this PR introduces. Run under -race (make check does), it
// is the lockdown for the lock-free read path. At the end, the settled
// database must answer identically to a monolithic build of the final
// record state.
func TestSegmentedConcurrentHammer(t *testing.T) {
	recs, query, _ := testRecords(340)
	base, stream := recs[:25], recs[25:]

	dir := filepath.Join(t.TempDir(), "db")
	db, err := Build(base, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSegmented(dir); err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(3)
	compactErrs := make(chan error, 16)
	db.StartCompactor(func(err error) {
		select {
		case compactErrs <- err:
		default:
		}
	})

	// The records deleted during the run, fixed up front so the final
	// state is known: two base records that are never strong hits plus
	// one appended later.
	dead := []int{7, 13, 25}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: single-query and batch searches across every snapshot
	// the writers publish. Results must always be well-formed and
	// internally consistent (the Desc of each result matches its ID in
	// the snapshot the search ran against, which searchGrid options
	// exercise through both coarse modes).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			opts := DefaultSearchOptions()
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := opts
				o.Diagonal = rng.Intn(2) == 0
				o.CoarseWorkers = rng.Intn(3)
				if rng.Intn(4) == 0 {
					batch, err := db.SearchBatch([]string{query, query[:100]}, o, 2)
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					for _, rs := range batch {
						for i := 1; i < len(rs); i++ {
							if rs[i].Score > rs[i-1].Score {
								t.Error("batch results unsorted")
								return
							}
						}
					}
					continue
				}
				rs, err := db.Search(query, o)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				for i := 1; i < len(rs); i++ {
					if rs[i].Score > rs[i-1].Score {
						t.Error("results unsorted")
						return
					}
				}
			}
		}(int64(350 + r))
	}

	// Explicit compactions race the background compactor too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	// Writer: append the stream in small batches, interleaving the
	// scripted deletes once their targets exist.
	deleted := 0
	for start := 0; start < len(stream); start += 5 {
		end := start + 5
		if end > len(stream) {
			end = len(stream)
		}
		if err := db.Append(stream[start:end]); err != nil {
			t.Fatalf("append: %v", err)
		}
		for deleted < len(dead) && dead[deleted] < db.NumSequences() {
			if err := db.Delete(dead[deleted]); err != nil {
				t.Fatalf("delete %d: %v", dead[deleted], err)
			}
			deleted++
		}
	}
	close(stop)
	wg.Wait()
	db.StopCompactor()
	select {
	case err := <-compactErrs:
		t.Fatalf("background compaction: %v", err)
	default:
	}

	// Settle fully and compare against the monolithic reference: all
	// records, the scripted deletions as stubs.
	db.SetMaxSegments(1)
	for {
		n, err := db.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	want := append([]Record{}, recs...)
	for _, id := range dead {
		want[id].Sequence = ""
	}
	mono, err := Build(want, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "hammer-settled", db, mono, query)

	// The persisted directory holds the same state.
	reopened, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "hammer-reopened", reopened, mono, query)
	if got, wantN := reopened.NumSequences(), len(recs); got != wantN {
		t.Fatalf("reopened %d records, want %d", got, wantN)
	}
	for _, id := range dead {
		if reopened.Sequence(id) != "" {
			t.Errorf("deleted record %d still has bases after reopen", id)
		}
	}
}

// TestSearcherPoolSnapshotStaleness pins the pool-invalidation rule:
// a searcher checked out against one snapshot is never returned to the
// pool once a writer publishes a newer one, and fresh checkouts always
// see the new snapshot.
func TestSearcherPoolSnapshotStaleness(t *testing.T) {
	recs, query, _ := testRecords(341)
	db, err := Build(recs[:30], DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(1 << 30)
	before, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Hold a searcher across an Append, then return it: the pool must
	// drop it rather than serve a stale segment set later.
	s, set, err := db.getSearcher()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(recs[30:]); err != nil {
		t.Fatal(err)
	}
	db.putSearcher(s)
	if set.NumSeqs() == db.NumSequences() {
		t.Fatal("append did not change the snapshot")
	}
	s2, set2, err := db.getSearcher()
	if err != nil {
		t.Fatal(err)
	}
	defer db.putSearcher(s2)
	if s2 == s {
		t.Error("stale searcher served from the pool after snapshot swap")
	}
	if set2.NumSeqs() != db.NumSequences() {
		t.Error("fresh checkout sees a stale snapshot")
	}

	// And post-append answers match a monolithic build of the full
	// collection, while the pre-append slice is untouched.
	mono, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	after, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Errorf("post-append results diverge from monolithic build")
	}
	if len(before) > 0 && before[0].ID >= 30 {
		t.Errorf("pre-append search saw unappended records")
	}
}
