package nucleodb

import "testing"

// TestCompactorLifecycle pins the compactor facade's idempotence
// contract: StartCompactor while running is a no-op, StopCompactor is
// safe on a database whose compactor never started or already
// stopped, and the pair can cycle. A lifecycle bug here deadlocks or
// double-closes the stop channel, so the test passing at all is the
// assertion.
func TestCompactorLifecycle(t *testing.T) {
	recs, _, _ := testRecords(91)
	d, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Stop before any start: no-op.
	d.StopCompactor()

	errs := make(chan error, 16)
	onErr := func(err error) { errs <- err }
	d.StartCompactor(onErr)
	// Second start while running: no-op, must not spawn a second
	// goroutine or replace the stop channel of the first.
	d.StartCompactor(onErr)

	d.StopCompactor()
	// Stop after stopped: no-op, must not close the channel twice.
	d.StopCompactor()

	// The compactor can come back after a stop.
	d.StartCompactor(onErr)
	d.StopCompactor()

	select {
	case err := <-errs:
		t.Fatalf("compactor reported error: %v", err)
	default:
	}
}

// TestCompactorCloseWhileRunning pins that Close stops a running
// compactor and that a StopCompactor after Close stays a no-op.
func TestCompactorCloseWhileRunning(t *testing.T) {
	recs, _, _ := testRecords(92)
	d, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.StartCompactor(nil)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d.StopCompactor()
}
