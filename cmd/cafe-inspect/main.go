// Command cafe-inspect prints diagnostics for a database built by
// cafe-build: storage breakdown, interval-vocabulary statistics, the
// posting-list length distribution, and the most frequent intervals —
// the numbers that inform interval-length and stopping choices.
//
// Usage:
//
//	cafe-inspect -db ./mydb
//	cafe-inspect -db ./mydb -top 20
//	cafe-inspect -db ./mydb -json   # machine-readable summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"nucleodb/internal/db"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/segment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-inspect: ")

	var (
		dbDir  = flag.String("db", "", "database directory (required)")
		top    = flag.Int("top", 10, "how many of the most frequent intervals to list")
		asJSON = flag.Bool("json", false, "print the storage/index summary as JSON and exit")
	)
	flag.Parse()
	if *dbDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	if segment.IsSegmented(*dbDir) {
		inspectSegmented(*dbDir, *asJSON)
		return
	}

	sf, err := os.Open(*dbDir + "/sequences.ndb")
	if err != nil {
		log.Fatal(err)
	}
	store, err := db.Load(sf)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}
	xf, err := os.Open(*dbDir + "/intervals.ndx")
	if err != nil {
		log.Fatal(err)
	}
	idx, err := index.Load(xf)
	xf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		opts := idx.Options()
		summary := map[string]any{
			"sequences":       store.Len(),
			"bases":           store.TotalBases(),
			"store_bytes":     store.EncodedBytes(),
			"index_bytes":     idx.SizeBytes(),
			"postings_bytes":  idx.PostingsBytes(),
			"total_postings":  idx.TotalPostings(),
			"interval_length": opts.K,
			"offsets_stored":  opts.StoreOffsets,
			"skip_interval":   opts.SkipInterval,
			"terms_indexed":   idx.NumTermsIndexed(),
			"terms_stopped":   idx.NumStopped(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("database %s\n\n", *dbDir)
	fmt.Printf("store:\n")
	fmt.Printf("  sequences:        %d\n", store.Len())
	fmt.Printf("  bases:            %d (%.2f Mbases)\n", store.TotalBases(), float64(store.TotalBases())/1e6)
	fmt.Printf("  compressed:       %d bytes (%.3f bits/base)\n",
		store.EncodedBytes(), 8*float64(store.EncodedBytes())/float64(store.TotalBases()))
	lens := make([]int, store.Len())
	for i := range lens {
		lens[i] = store.SeqLen(i)
	}
	sort.Ints(lens)
	if len(lens) > 0 {
		fmt.Printf("  length min/med/max: %d / %d / %d\n", lens[0], lens[len(lens)/2], lens[len(lens)-1])
	}

	opts := idx.Options()
	fmt.Printf("\nindex:\n")
	fmt.Printf("  interval length:  %d (vocabulary %d)\n", opts.K, idx.Coder().NumTerms())
	fmt.Printf("  offsets stored:   %v\n", opts.StoreOffsets)
	fmt.Printf("  skip interval:    %d\n", opts.SkipInterval)
	fmt.Printf("  terms indexed:    %d (%.1f%% of vocabulary)\n",
		idx.NumTermsIndexed(), 100*float64(idx.NumTermsIndexed())/float64(idx.Coder().NumTerms()))
	fmt.Printf("  terms stopped:    %d (fraction %.4f)\n", idx.NumStopped(), opts.StopFraction)
	fmt.Printf("  postings:         %d entries, %d bytes compressed\n", idx.TotalPostings(), idx.PostingsBytes())
	if idx.TotalPostings() > 0 {
		fmt.Printf("  bits/posting:     %.2f\n", 8*float64(idx.PostingsBytes())/float64(idx.TotalPostings()))
	}

	// Posting-list length distribution.
	var dfs []int
	var all []termDF
	idx.Terms(func(t kmer.Term, df int) {
		dfs = append(dfs, df)
		all = append(all, termDF{t, df})
	})
	if len(dfs) > 0 {
		sort.Ints(dfs)
		pct := func(p float64) int { return dfs[int(p*float64(len(dfs)-1))] }
		fmt.Printf("\nposting-list lengths (sequences per interval):\n")
		fmt.Printf("  p50 %d   p90 %d   p99 %d   max %d\n", pct(0.50), pct(0.90), pct(0.99), pct(1))
		singletons := 0
		for _, df := range dfs {
			if df == 1 {
				singletons++
			}
		}
		fmt.Printf("  singleton lists:  %d (%.1f%%)\n", singletons, 100*float64(singletons)/float64(len(dfs)))
	}

	printTop(*top, all, idx.Coder())
}

// inspectSegmented prints the layout of a segmented database: the
// per-segment breakdown plus aggregate storage numbers.
func inspectSegmented(dir string, asJSON bool) {
	set, nextSeg, err := segment.OpenDir(dir, false)
	if err != nil {
		log.Fatal(err)
	}
	type segSummary struct {
		Name       string `json:"name"`
		Seqs       int    `json:"seqs"`
		Deleted    int    `json:"deleted"`
		LiveBases  int    `json:"live_bases"`
		StoreBytes int    `json:"store_bytes"`
		IndexBytes int    `json:"index_bytes"`
	}
	var segs []segSummary
	storeBytes, indexBytes := 0, 0
	for _, g := range set.Segments() {
		segs = append(segs, segSummary{
			Name:       g.Name,
			Seqs:       g.Len(),
			Deleted:    g.NumDeleted(),
			LiveBases:  g.LiveBases(),
			StoreBytes: g.Store.EncodedBytes(),
			IndexBytes: g.Index.SizeBytes(),
		})
		storeBytes += g.Store.EncodedBytes()
		indexBytes += g.Index.SizeBytes()
	}
	opts := set.Options()
	if asJSON {
		summary := map[string]any{
			"segmented":       true,
			"segments":        segs,
			"next_seg":        nextSeg,
			"sequences":       set.NumSeqs(),
			"deleted":         set.NumDeleted(),
			"bases":           set.TotalBases(),
			"store_bytes":     storeBytes,
			"index_bytes":     indexBytes,
			"interval_length": opts.K,
			"offsets_stored":  opts.StoreOffsets,
			"skip_interval":   opts.SkipInterval,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("database %s (segmented layout)\n\n", dir)
	fmt.Printf("segments: %d (next file number %d)\n", set.Len(), nextSeg)
	for _, g := range segs {
		fmt.Printf("  %-12s %8d seqs", g.Name, g.Seqs)
		if g.Deleted > 0 {
			fmt.Printf(" (%d tombstoned)", g.Deleted)
		}
		fmt.Printf("  %10d live bases  store %8d B  index %8d B\n", g.LiveBases, g.StoreBytes, g.IndexBytes)
	}
	fmt.Printf("\ntotals:\n")
	fmt.Printf("  sequences:        %d (%d tombstoned)\n", set.NumSeqs(), set.NumDeleted())
	fmt.Printf("  live bases:       %d (%.2f Mbases)\n", set.TotalBases(), float64(set.TotalBases())/1e6)
	fmt.Printf("  store:            %d bytes\n", storeBytes)
	fmt.Printf("  index:            %d bytes (interval length %d, offsets %v)\n", indexBytes, opts.K, opts.StoreOffsets)
}

type termDF struct {
	term kmer.Term
	df   int
}

func printTop(top int, all []termDF, coder *kmer.Coder) {
	if top <= 0 || len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if top > len(all) {
		top = len(all)
	}
	fmt.Printf("\nmost frequent intervals:\n")
	for _, e := range all[:top] {
		fmt.Printf("  %s  in %d sequences\n", coder.String(e.term), e.df)
	}
}
