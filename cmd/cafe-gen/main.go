// Command cafe-gen generates a synthetic GenBank-like nucleotide
// collection in FASTA format, with homologous families whose membership
// is recorded in the description lines. It stands in for the GenBank
// data the paper evaluated on (see DESIGN.md).
//
// Usage:
//
//	cafe-gen -seqs 10000 -seed 1 -out collection.fasta
//	cafe-gen -seqs 2000 -queries 50 -qout queries.fasta -out collection.fasta
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-gen: ")

	var (
		seqs       = flag.Int("seqs", 2000, "number of sequences to generate")
		seed       = flag.Int64("seed", 1, "random seed")
		meanLen    = flag.Int("meanlen", 900, "mean sequence length (log-normal)")
		out        = flag.String("out", "", "output FASTA path (default stdout)")
		queries    = flag.Int("queries", 0, "also derive this many homologous queries")
		queryLen   = flag.Int("querylen", 400, "query fragment length")
		divergence = flag.Float64("divergence", 0.10, "query mutation divergence")
		qout       = flag.String("qout", "", "query FASTA path (required with -queries)")
	)
	flag.Parse()

	cfg := gen.DefaultConfig(*seqs, *seed)
	cfg.MeanLength = *meanLen
	col, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dna.WriteFasta(w, col.Records, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cafe-gen: wrote %d sequences, %.1f Mbases\n",
		len(col.Records), float64(col.TotalBases())/1e6)

	if *queries > 0 {
		if *qout == "" {
			log.Fatal("-queries needs -qout")
		}
		wcfg := gen.WorkloadConfig{
			Seed:          *seed + 1,
			NumHomologous: *queries,
			QueryLength:   *queryLen,
			Divergence:    *divergence,
		}
		qs, err := gen.MakeWorkload(col, wcfg)
		if err != nil {
			log.Fatal(err)
		}
		recs := make([]dna.Record, len(qs))
		for i, q := range qs {
			recs[i] = dna.Record{Desc: q.Name, Codes: q.Codes}
		}
		qf, err := os.Create(*qout)
		if err != nil {
			log.Fatal(err)
		}
		defer qf.Close()
		if err := dna.WriteFasta(qf, recs, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cafe-gen: wrote %d queries to %s\n", len(qs), *qout)
	}
}
