// Command cafe-build constructs a nucleodb database (compressed
// sequence store plus interval index) from a FASTA collection.
//
// Usage:
//
//	cafe-build -in collection.fasta -db ./mydb -k 9
//	cafe-build -in collection.fasta -db ./mydb -segment-size 10000
//
// With -segment-size the collection is indexed in segments of that
// many records and saved in the segmented layout (MANIFEST plus one
// store and index file per segment): the database then supports
// crash-safe incremental Append, Delete and background compaction when
// reopened. Without it the legacy monolithic layout is written.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-build: ")

	var (
		in      = flag.String("in", "", "input FASTA path (required)")
		out     = flag.String("db", "", "output database directory (required)")
		k       = flag.Int("k", 9, "interval (substring) length, 1-12")
		offsets = flag.Bool("offsets", true, "store occurrence offsets (enables diagonal ranking)")
		stop    = flag.Float64("stop", 0, "index stopping: fraction of most frequent intervals to drop")
		skip    = flag.Int("skip", 0, "posting-list skip interval (1 = sqrt heuristic, 0 = none)")
		workers = flag.Int("workers", 0, "build parallelism (0 = all CPUs)")
		mask    = flag.String("mask", "", "spaced seed mask (e.g. 111010010100110111); overrides -k")
		segSize = flag.Int("segment-size", 0, "records per segment; > 0 writes the segmented layout (enables incremental growth)")
		sigs    = flag.Bool("signatures", false, "also build bit-sliced interval signatures (enables -coarse-backend signature at search time; persisted only in the segmented layout)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	cfg := nucleodb.DefaultBuildConfig()
	cfg.IntervalLength = *k
	cfg.StoreOffsets = *offsets
	cfg.StopFraction = *stop
	cfg.SkipInterval = *skip
	cfg.Workers = *workers
	cfg.SpacedMask = *mask
	cfg.Signatures = *sigs
	if *sigs && *segSize <= 0 {
		log.Fatal("-signatures requires -segment-size (the legacy monolithic layout does not persist signatures)")
	}

	start := time.Now()
	var db *nucleodb.Database
	if *segSize > 0 {
		db, err = buildSegmented(f, cfg, *segSize)
	} else {
		db, err = nucleodb.BuildFromFasta(f, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	if *segSize > 0 {
		err = db.SaveSegmented(*out)
	} else {
		err = db.Save(*out)
	}
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("built %s in %v\n", *out, buildTime.Round(time.Millisecond))
	if *segSize > 0 {
		fmt.Printf("  segments:       %d (segmented layout)\n", st.Segments)
	}
	fmt.Printf("  sequences:      %d (%.1f Mbases)\n", st.NumSequences, float64(st.TotalBases)/1e6)
	fmt.Printf("  store:          %.2f MB (%.3f bits/base)\n",
		float64(st.StoreBytes)/1e6, 8*float64(st.StoreBytes)/float64(st.TotalBases))
	fmt.Printf("  index:          %.2f MB (%d terms, %d stopped)\n",
		float64(st.IndexBytes)/1e6, st.TermsIndexed, st.TermsStopped)
	if st.SignatureBytes > 0 {
		fmt.Printf("  signatures:     %.2f MB\n", float64(st.SignatureBytes)/1e6)
	}
}

// buildSegmented streams the FASTA input in batches of segSize records:
// the first batch builds the database, each later batch appends as its
// own segment (compaction stays off so the chunking is preserved for
// SaveSegmented). Peak memory is one batch's raw records plus the
// growing database, like BuildFromFasta.
func buildSegmented(r io.Reader, cfg nucleodb.BuildConfig, segSize int) (*nucleodb.Database, error) {
	fr := dna.NewFastaReader(r)
	var db *nucleodb.Database
	batch := make([]nucleodb.Record, 0, segSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		var err error
		if db == nil {
			db, err = nucleodb.Build(batch, cfg)
			if err == nil {
				db.SetMaxSegments(1 << 30)
			}
		} else {
			err = db.Append(batch)
		}
		batch = batch[:0]
		return err
	}
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batch = append(batch, nucleodb.Record{Desc: rec.Desc, Sequence: dna.String(rec.Codes)})
		if len(batch) == segSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if db == nil {
		return nucleodb.Build(nil, cfg)
	}
	return db, nil
}
