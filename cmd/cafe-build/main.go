// Command cafe-build constructs a nucleodb database (compressed
// sequence store plus interval index) from a FASTA collection.
//
// Usage:
//
//	cafe-build -in collection.fasta -db ./mydb -k 9
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"nucleodb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-build: ")

	var (
		in      = flag.String("in", "", "input FASTA path (required)")
		out     = flag.String("db", "", "output database directory (required)")
		k       = flag.Int("k", 9, "interval (substring) length, 1-12")
		offsets = flag.Bool("offsets", true, "store occurrence offsets (enables diagonal ranking)")
		stop    = flag.Float64("stop", 0, "index stopping: fraction of most frequent intervals to drop")
		skip    = flag.Int("skip", 0, "posting-list skip interval (1 = sqrt heuristic, 0 = none)")
		workers = flag.Int("workers", 0, "build parallelism (0 = all CPUs)")
		mask    = flag.String("mask", "", "spaced seed mask (e.g. 111010010100110111); overrides -k")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	cfg := nucleodb.DefaultBuildConfig()
	cfg.IntervalLength = *k
	cfg.StoreOffsets = *offsets
	cfg.StopFraction = *stop
	cfg.SkipInterval = *skip
	cfg.Workers = *workers
	cfg.SpacedMask = *mask

	start := time.Now()
	db, err := nucleodb.BuildFromFasta(f, cfg)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	if err := db.Save(*out); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("built %s in %v\n", *out, buildTime.Round(time.Millisecond))
	fmt.Printf("  sequences:      %d (%.1f Mbases)\n", st.NumSequences, float64(st.TotalBases)/1e6)
	fmt.Printf("  store:          %.2f MB (%.3f bits/base)\n",
		float64(st.StoreBytes)/1e6, 8*float64(st.StoreBytes)/float64(st.TotalBases))
	fmt.Printf("  index:          %.2f MB (%d terms, %d stopped)\n",
		float64(st.IndexBytes)/1e6, st.TermsIndexed, st.TermsStopped)
}
