// Command cafe-bench regenerates the paper's evaluation: every table
// and figure (experiments E1–E8, see DESIGN.md) printed as plain-text
// tables. The absolute times are this machine's; the shapes — who wins,
// by what factor, where effects saturate — are the reproduction.
//
// Usage:
//
//	cafe-bench                 # quick suite (seconds)
//	cafe-bench -full           # full-size suite (minutes)
//	cafe-bench -run E3,E4      # selected experiments
//	cafe-bench -seed 7 -queries 50
//	cafe-bench -json           # per-stage work/latency breakdown as JSON
//	cafe-bench -coarse         # serial vs sharded coarse trajectory as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"nucleodb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-bench: ")

	var (
		full    = flag.Bool("full", false, "full-size experiment suite (tens of minutes; the exhaustive baselines dominate)")
		run     = flag.String("run", "", "comma-separated experiment ids (e.g. E1,E3); default all")
		seed    = flag.Int64("seed", 1, "random seed for the whole suite")
		queries = flag.Int("queries", 0, "override query count")
		bases   = flag.Int("bases", 0, "override base collection size in bases")
		list    = flag.Bool("list", false, "list experiments and exit")
		asJSON  = flag.Bool("json", false, "run the standard workload instrumented and print the per-stage breakdown as JSON instead of the tables")
		coarse  = flag.Bool("coarse", false, "benchmark serial vs sharded coarse search and print the trajectory as JSON (exits nonzero if sharded results ever differ from serial)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Suite() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Quick(*seed)
	if *full {
		cfg = experiments.Full(*seed)
	}
	if *queries > 0 {
		cfg.NumQueries = *queries
	}
	if *bases > 0 {
		cfg.BaseBases = *bases
	}

	if *coarse {
		rep, err := experiments.CoarseBench(cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		// The benchmark doubles as the equivalence smoke in CI: sharded
		// coarse search is contractually byte-identical to serial.
		if !rep.CandidatesIdentical {
			log.Fatal("sharded coarse results differ from serial — equivalence contract broken")
		}
		return
	}

	if *asJSON {
		rep, err := experiments.Observe(cfg)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.Suite() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		if err := r.Run(os.Stdout, cfg); err != nil {
			log.Fatalf("%s: %v", r.ID, err)
		}
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiments matched -run=%q", *run)
	}
	fmt.Fprintf(os.Stderr, "\ncafe-bench: %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
