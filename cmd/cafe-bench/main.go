// Command cafe-bench regenerates the paper's evaluation: every table
// and figure (experiments E1–E8, see DESIGN.md) printed as plain-text
// tables. The absolute times are this machine's; the shapes — who wins,
// by what factor, where effects saturate — are the reproduction.
//
// Usage:
//
//	cafe-bench                 # quick suite (seconds)
//	cafe-bench -full           # full-size suite (minutes)
//	cafe-bench -run E3,E4      # selected experiments
//	cafe-bench -seed 7 -queries 50
//	cafe-bench -json           # per-stage work/latency breakdown as JSON
//	cafe-bench -coarse         # serial vs sharded coarse trajectory as JSON
//	cafe-bench -fine           # scalar vs bitvector fine kernel sweep as JSON
//	cafe-bench -sig            # postings vs bit-sliced signature coarse backends as JSON
//
// The -coarse and -fine trajectories are parallelism benchmarks: they
// refuse to run at GOMAXPROCS=1 (override with -allow-single-core)
// so a single-core "parallel" trajectory is never committed again,
// and the -gate-* flags turn them into CI regression gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"nucleodb/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-bench: ")

	var (
		full    = flag.Bool("full", false, "full-size experiment suite (tens of minutes; the exhaustive baselines dominate)")
		run     = flag.String("run", "", "comma-separated experiment ids (e.g. E1,E3); default all")
		seed    = flag.Int64("seed", 1, "random seed for the whole suite")
		queries = flag.Int("queries", 0, "override query count")
		bases   = flag.Int("bases", 0, "override base collection size in bases")
		list    = flag.Bool("list", false, "list experiments and exit")
		asJSON  = flag.Bool("json", false, "run the standard workload instrumented and print the per-stage breakdown as JSON instead of the tables")
		coarse  = flag.Bool("coarse", false, "benchmark serial vs sharded coarse search and print the trajectory as JSON (exits nonzero if sharded results ever differ from serial)")
		fine    = flag.Bool("fine", false, "benchmark the fine phase across kernels (scalar vs bitvector) and worker counts, print the sweep as JSON (exits nonzero if any cell's results differ from the serial scalar run)")
		sigRun  = flag.Bool("sig", false, "benchmark the postings vs bit-sliced signature coarse backends per coarse mode and print the shoot-out as JSON (exits nonzero if the signature results ever differ from postings)")

		allowSingleCore = flag.Bool("allow-single-core", false, "run -coarse/-fine even at GOMAXPROCS=1 (the committed trajectories must come from multi-core runs)")
		gateCoarse      = flag.Float64("gate-coarse-speedup", 0, "with -coarse: fail unless the best sharded coarse speedup at 2+ workers reaches this factor (skipped with a warning when the machine has fewer than 2 CPUs)")
		gateKernel      = flag.Float64("gate-kernel-speedup", 0, "with -fine: fail unless the bitvector kernel's serial speedup over scalar reaches this factor")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Suite() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Quick(*seed)
	if *full {
		cfg = experiments.Full(*seed)
	}
	if *queries > 0 {
		cfg.NumQueries = *queries
	}
	if *bases > 0 {
		cfg.BaseBases = *bases
	}

	if *coarse || *fine {
		// A "parallel trajectory" measured on one scheduler thread is a
		// lie (sharding shows as pure overhead); ROADMAP carried exactly
		// that artefact once. Refuse rather than mislead.
		if procs := runtime.GOMAXPROCS(0); procs == 1 && !*allowSingleCore {
			log.Fatal("refusing to benchmark parallelism at GOMAXPROCS=1 " +
				"(set GOMAXPROCS>=4 for committed trajectories, or pass -allow-single-core to measure anyway)")
		}
		if cpus, procs := runtime.NumCPU(), runtime.GOMAXPROCS(0); cpus < procs {
			log.Printf("WARNING: GOMAXPROCS=%d but only %d CPU(s) — parallel rows measure scheduling overhead, not speedup; treat this trajectory as indicative only", procs, cpus)
		}
	}

	if *coarse {
		rep, err := experiments.CoarseBench(cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		// The benchmark doubles as the equivalence smoke in CI: sharded
		// coarse search is contractually byte-identical to serial.
		if !rep.CandidatesIdentical {
			log.Fatal("sharded coarse results differ from serial — equivalence contract broken")
		}
		if *gateCoarse > 0 {
			if rep.CPUs < 2 {
				log.Printf("WARNING: skipping the coarse parallel-efficiency gate (%.2fx) — only %d CPU available, parallel speedup is physically impossible here", *gateCoarse, rep.CPUs)
				return
			}
			best := 0.0
			for _, run := range rep.Runs {
				if run.Workers >= 2 && run.CoarseSpeedup > best {
					best = run.CoarseSpeedup
				}
			}
			if best < *gateCoarse {
				log.Fatalf("coarse parallel efficiency regressed: best sharded speedup %.2fx at 2+ workers, gate requires %.2fx", best, *gateCoarse)
			}
			log.Printf("coarse gate passed: best sharded speedup %.2fx >= %.2fx", best, *gateCoarse)
		}
		return
	}

	if *fine {
		rep, err := experiments.FineBench(cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if !rep.ResultsIdentical {
			log.Fatal("fine kernel/worker results differ from the serial scalar run — equivalence contract broken")
		}
		if *gateKernel > 0 {
			// The kernel speedup is algorithmic (SWAR lanes vs scalar
			// cells), so it is gated even on one core; measured serially
			// to keep scheduler noise out.
			got := rep.KernelSpeedupAt(1)
			if got < *gateKernel {
				log.Fatalf("bitvector kernel speedup regressed: %.2fx over scalar (serial), gate requires %.2fx", got, *gateKernel)
			}
			log.Printf("kernel gate passed: bitvector %.2fx over scalar >= %.2fx", got, *gateKernel)
		}
		return
	}

	if *sigRun {
		// Not a parallelism bench — no GOMAXPROCS=1 refusal: the word-wide
		// bit-slice scan vs posting-list traversal comparison is serial.
		rep, err := experiments.SigBench(cfg)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		// The benchmark doubles as the equivalence smoke in CI: the
		// signature backend is contractually result-identical to postings.
		if !rep.ResultsIdentical {
			log.Fatal("signature coarse results differ from postings — equivalence contract broken")
		}
		return
	}

	if *asJSON {
		rep, err := experiments.Observe(cfg)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.Suite() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		if ran > 0 {
			fmt.Println()
		}
		if err := r.Run(os.Stdout, cfg); err != nil {
			log.Fatalf("%s: %v", r.ID, err)
		}
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiments matched -run=%q", *run)
	}
	fmt.Fprintf(os.Stderr, "\ncafe-bench: %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
