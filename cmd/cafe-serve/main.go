// Command cafe-serve exposes a nucleodb database as an HTTP/JSON query
// service: load one database, keep it resident, and answer /search and
// /batch requests until told to stop. SIGINT/SIGTERM drain gracefully —
// the listener closes, in-flight requests finish (each bounded by its
// deadline), then the process exits.
//
// Usage:
//
//	cafe-serve -db ./mydb -addr :8080
//	curl 'localhost:8080/search?q=ACGTTGCA...&limit=5'
//	curl -d '{"queries":["ACGT...","TTGC..."]}' localhost:8080/batch
//
// Endpoints: /search, /batch, /healthz, /metrics, /debug/vars.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nucleodb"
	"nucleodb/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-serve: ")

	defaults := server.DefaultConfig()
	var (
		dbDir      = flag.String("db", "", "database directory (required)")
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		paged      = flag.Bool("paged", false, "read posting lists from disk on demand instead of loading the index")
		timeout    = flag.Duration("timeout", defaults.DefaultTimeout, "default per-request search deadline")
		maxTimeout = flag.Duration("maxtimeout", defaults.MaxTimeout, "cap on client-requested ?timeout=")
		workers    = flag.Int("workers", defaults.Workers, "concurrent searches")
		queue      = flag.Int("queue", defaults.QueueDepth, "requests allowed to wait for a worker before shedding with 429")
		cacheSize  = flag.Int("cache", defaults.CacheSize, "result cache capacity in entries (0 disables)")
		candidates = flag.Int("candidates", defaults.Options.Candidates, "default coarse-phase candidate budget")
		limit      = flag.Int("limit", defaults.Options.Limit, "default answers per query")
		coarseW    = flag.Int("coarse-workers", defaults.Options.CoarseWorkers, "shard each search's coarse posting-list walk across this many workers (0 = serial; results are identical — visible as coarse_shards_total in /metrics)")
		coarseBack = flag.String("coarse-backend", "auto", "default coarse backend: auto, postings, or signature (needs a database built with signatures; per-request coarse_backend= overrides)")
		compact    = flag.Bool("compact", true, "run the background compactor: fold accumulated segments while serving (segmented databases; visible as segments_total in /metrics)")
		maxSegs    = flag.Int("max-segments", 0, "compaction trigger: fold while more than this many segments (0 = library default)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	)
	flag.Parse()
	if *dbDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	open := nucleodb.Open
	if *paged {
		open = nucleodb.OpenPaged
	}
	db, err := open(*dbDir, nucleodb.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if *maxSegs > 0 {
		db.SetMaxSegments(*maxSegs)
	}
	if *compact {
		// Searches keep answering against their snapshot while the
		// compactor folds segments and swaps in the merged set.
		db.StartCompactor(func(err error) { log.Printf("compact: %v", err) })
		if n := db.NumSegments(); n > 1 {
			log.Printf("background compactor running (%d segments)", n)
		}
	}

	cfg := defaults
	cfg.DefaultTimeout = *timeout
	cfg.MaxTimeout = *maxTimeout
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.CacheSize = *cacheSize
	cfg.Options.Candidates = *candidates
	cfg.Options.Limit = *limit
	cfg.Options.CoarseWorkers = *coarseW
	cfg.Options.CoarseBackend = *coarseBack
	srv, err := server.New(db, cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	stats := db.Stats()
	log.Printf("serving %d sequences (%d bases) with %d workers, queue %d, cache %d",
		stats.NumSequences, stats.TotalBases, cfg.Workers, cfg.QueueDepth, cfg.CacheSize)
	// The harness and operators parse this line for the bound port, so
	// it stays on one line and names the resolved address.
	log.Printf("listening on http://%s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (up to %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	cs := srv.CacheStats()
	log.Printf("drained; cache served %d hits / %d misses (%.0f%% hit rate)",
		cs.Hits, cs.Misses, 100*cs.HitRate())
}
