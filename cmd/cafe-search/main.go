// Command cafe-search evaluates queries against a nucleodb database
// built by cafe-build. Queries come from a FASTA file or a literal
// sequence on the command line.
//
// Usage:
//
//	cafe-search -db ./mydb -q ACGTTGCA...
//	cafe-search -db ./mydb -queries queries.fasta -limit 10
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
)

// indent prefixes every non-empty line of text.
func indent(text, prefix string) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-search: ")

	var (
		dbDir      = flag.String("db", "", "database directory (required)")
		q          = flag.String("q", "", "literal query sequence")
		queryFile  = flag.String("queries", "", "FASTA file of queries")
		candidates = flag.Int("candidates", 100, "coarse-phase candidate budget")
		limit      = flag.Int("limit", 20, "answers per query")
		exact      = flag.Bool("exact", false, "exact (unbanded) fine alignment")
		fineKernel = flag.String("fine-kernel", "auto", "fine scoring kernel: auto, scalar, or bitvector (bit-parallel; -exact only)")
		diagonal   = flag.Bool("diagonal", false, "diagonal coarse ranking (needs offsets)")
		coarseMode = flag.String("coarse-mode", "", "coarse ranking mode: distinct, total, normalised, or diagonal (overrides -diagonal)")
		coarseBack = flag.String("coarse-backend", "auto", "coarse backend: auto, postings, or signature (needs a database built with -signatures)")
		minScore   = flag.Int("minscore", 1, "minimum alignment score")
		strands    = flag.Bool("strands", false, "search both strands")
		show       = flag.Int("show", 0, "print full alignments for the top N answers")
		paged      = flag.Bool("paged", false, "read posting lists from disk on demand instead of loading the index")
		tsv        = flag.Bool("tsv", false, "tab-separated output: query, rank, id, desc, score, bits, evalue, strand, spans")
		stats      = flag.Bool("stats", false, "print per-stage work counters and latencies after each query, and process totals at the end")
		coarseW    = flag.Int("coarse-workers", 0, "shard the coarse posting-list walk across this many workers (0 = serial; results are identical)")
		fineW      = flag.Int("fine-workers", 0, "align candidates concurrently in the fine phase (0 = serial; results are identical)")
	)
	flag.Parse()
	if *dbDir == "" || (*q == "" && *queryFile == "") {
		flag.Usage()
		os.Exit(2)
	}

	open := nucleodb.Open
	if *paged {
		open = nucleodb.OpenPaged
	}
	db, err := open(*dbDir, nucleodb.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	opts := nucleodb.DefaultSearchOptions()
	opts.Candidates = *candidates
	opts.Limit = *limit
	opts.Exact = *exact
	opts.FineKernel = *fineKernel
	opts.Diagonal = *diagonal
	opts.CoarseMode = *coarseMode
	opts.CoarseBackend = *coarseBack
	opts.MinScore = *minScore
	opts.BothStrands = *strands
	opts.CoarseWorkers = *coarseW
	opts.FineWorkers = *fineW

	type namedQuery struct {
		name string
		seq  string
	}
	var queries []namedQuery
	if *q != "" {
		queries = append(queries, namedQuery{"query", *q})
	}
	if *queryFile != "" {
		f, err := os.Open(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		recs, err := dna.ReadAll(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			queries = append(queries, namedQuery{r.Desc, dna.String(r.Codes)})
		}
	}

	for _, nq := range queries {
		start := time.Now()
		rs, st, err := db.SearchWithStats(nq.seq, opts)
		if err != nil {
			log.Fatalf("%s: %v", nq.name, err)
		}
		if *tsv {
			if *stats {
				printStats(os.Stderr, st)
			}
			for i, r := range rs {
				strand := "+"
				if r.Reverse {
					strand = "-"
				}
				fmt.Printf("%s\t%d\t%d\t%s\t%d\t%.1f\t%.3g\t%s\t%d\t%d\t%d\t%d\n",
					nq.name, i+1, r.ID, r.Desc, r.Score, r.Bits, r.EValue, strand,
					r.QueryStart, r.QueryEnd, r.SubjectStart, r.SubjectEnd)
			}
			continue
		}
		fmt.Printf("query %s (%d bases): %d answers in %v\n",
			nq.name, len(nq.seq), len(rs), time.Since(start).Round(time.Microsecond))
		for i, r := range rs {
			strand := ""
			if r.Reverse {
				strand = " (minus strand)"
			}
			fmt.Printf("  %2d. score %-6d bits %-7.1f E %-10.2g seq %-6d %s%s",
				i+1, r.Score, r.Bits, r.EValue, r.ID, r.Desc, strand)
			if r.Identity > 0 {
				fmt.Printf("  (identity %.0f%%, q[%d:%d] s[%d:%d])",
					100*r.Identity, r.QueryStart, r.QueryEnd, r.SubjectStart, r.SubjectEnd)
			}
			fmt.Println()
			if i < *show {
				text, err := db.Alignment(nq.seq, r.ID)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Println(indent(text, "      "))
			}
		}
		if *stats {
			printStats(os.Stdout, st)
		}
	}
	if *stats && len(queries) > 1 {
		// In -tsv mode stdout is the machine-readable stream; totals
		// join the per-query stats on stderr.
		dst := io.Writer(os.Stdout)
		if *tsv {
			dst = os.Stderr
		}
		fmt.Fprintln(dst, "\nprocess totals:")
		if err := nucleodb.WriteMetricsText(dst); err != nil {
			log.Fatal(err)
		}
	}
}

// printStats renders one query's per-stage breakdown. Counter fields
// are stable (the clitest golden test keys on them); latencies vary
// run to run.
func printStats(w io.Writer, st nucleodb.SearchStats) {
	fmt.Fprintf(w, "  stats: strands %d  terms %d  lists %d  postings %d  bytes %d\n",
		st.Strands, st.QueryTerms, st.PostingLists, st.PostingsDecoded, st.PostingsBytesRead)
	fmt.Fprintf(w, "    coarse:    %-10v backend %s, sequences %d, candidates %d, shards %d\n",
		st.CoarseTime.Round(time.Microsecond), st.CoarseBackend, st.CoarseSequences, st.CoarseCandidates, st.CoarseShards)
	if st.CoarseBackend == "signature" {
		fmt.Fprintf(w, "    signature: probes %d, candidates %d, false positives %d\n",
			st.SigProbes, st.SigCandidates, st.SigFalsePositives)
	}
	fmt.Fprintf(w, "    prescreen: %-10v rejected %d\n",
		st.PrescreenTime.Round(time.Microsecond), st.PrescreenRejections)
	fmt.Fprintf(w, "    fine:      %-10v alignments %d, dp-cells %d, kernel %s, bitvector %d\n",
		st.FineTime.Round(time.Microsecond), st.FineAlignments, st.FineDPCells, st.FineKernel, st.BitvectorAlignments)
	fmt.Fprintf(w, "    traceback: %-10v alignments %d, dp-cells %d\n",
		st.TracebackTime.Round(time.Microsecond), st.TracebackAlignments, st.TracebackDPCells)
	fmt.Fprintf(w, "    total:     %-10v results %d\n",
		st.TotalTime.Round(time.Microsecond), st.Results)
}
