// Command cafe-merge combines two databases built by cafe-build into
// one, without re-indexing: the sequence stores are concatenated and
// the interval indexes merged (see index.Merge). Both databases must
// have been built with the same index options.
//
// Usage:
//
//	cafe-merge -a ./db1 -b ./db2 -out ./combined
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"nucleodb/internal/db"
	"nucleodb/internal/index"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-merge: ")

	var (
		aDir = flag.String("a", "", "first database directory (required)")
		bDir = flag.String("b", "", "second database directory (required)")
		out  = flag.String("out", "", "output database directory (required)")
	)
	flag.Parse()
	if *aDir == "" || *bDir == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	storeA, idxA := load(*aDir)
	storeB, idxB := load(*bDir)

	merged, err := index.Merge(idxA, idxB)
	if err != nil {
		log.Fatal(err)
	}
	var store db.Store
	for i := 0; i < storeA.Len(); i++ {
		store.Add(storeA.Desc(i), storeA.Sequence(i))
	}
	for i := 0; i < storeB.Len(); i++ {
		store.Add(storeB.Desc(i), storeB.Sequence(i))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	save(filepath.Join(*out, "sequences.ndb"), store.Save)
	save(filepath.Join(*out, "intervals.ndx"), merged.Save)

	fmt.Printf("merged %d + %d sequences (%.1f Mbases) into %s in %v\n",
		storeA.Len(), storeB.Len(), float64(store.TotalBases())/1e6,
		*out, time.Since(start).Round(time.Millisecond))
}

func load(dir string) (*db.Store, *index.Index) {
	sf, err := os.Open(filepath.Join(dir, "sequences.ndb"))
	if err != nil {
		log.Fatal(err)
	}
	store, err := db.Load(sf)
	sf.Close()
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	xf, err := os.Open(filepath.Join(dir, "intervals.ndx"))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := index.Load(xf)
	xf.Close()
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	return store, idx
}

func save(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
