// Command cafe-merge combines two databases built by cafe-build into
// one, without re-indexing: the sequence stores are concatenated and
// the interval indexes merged (see index.Merge). Both databases must
// have been built with the same index options.
//
// Usage:
//
//	cafe-merge -a ./db1 -b ./db2 -out ./combined
//	cafe-merge -compact ./segdb [-max-segments 1]
//
// With -compact it instead folds a segmented database (built by
// cafe-build -segment-size, or grown by Append) down to at most
// -max-segments segments in place, reclaiming tombstoned records. The
// rewrite is crash-safe: each step writes the merged segment files and
// swaps the manifest atomically before removing superseded files.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"nucleodb"
	"nucleodb/internal/db"
	"nucleodb/internal/index"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cafe-merge: ")

	var (
		aDir    = flag.String("a", "", "first database directory (required unless -compact)")
		bDir    = flag.String("b", "", "second database directory (required unless -compact)")
		out     = flag.String("out", "", "output database directory (required unless -compact)")
		compact = flag.String("compact", "", "segmented database directory to compact in place")
		maxSegs = flag.Int("max-segments", 1, "with -compact: fold down to at most this many segments")
	)
	flag.Parse()
	if *compact != "" {
		compactDir(*compact, *maxSegs)
		return
	}
	if *aDir == "" || *bDir == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	storeA, idxA := load(*aDir)
	storeB, idxB := load(*bDir)

	merged, err := index.Merge(idxA, idxB)
	if err != nil {
		log.Fatal(err)
	}
	var store db.Store
	for i := 0; i < storeA.Len(); i++ {
		store.Add(storeA.Desc(i), storeA.Sequence(i))
	}
	for i := 0; i < storeB.Len(); i++ {
		store.Add(storeB.Desc(i), storeB.Sequence(i))
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	save(filepath.Join(*out, "sequences.ndb"), store.Save)
	save(filepath.Join(*out, "intervals.ndx"), merged.Save)

	fmt.Printf("merged %d + %d sequences (%.1f Mbases) into %s in %v\n",
		storeA.Len(), storeB.Len(), float64(store.TotalBases())/1e6,
		*out, time.Since(start).Round(time.Millisecond))
}

func compactDir(dir string, maxSegs int) {
	d, err := nucleodb.Open(dir, nucleodb.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	before := d.Stats()
	start := time.Now()
	d.SetMaxSegments(maxSegs)
	folded := 0
	for {
		n, err := d.Compact()
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			break
		}
		folded += n
	}
	after := d.Stats()
	fmt.Printf("compacted %s: %d -> %d segments (folded %d) in %v\n",
		dir, before.Segments, after.Segments, folded, time.Since(start).Round(time.Millisecond))
	if before.Deleted > 0 {
		fmt.Printf("  reclaimed %d tombstoned records (%d remain)\n",
			before.Deleted-after.Deleted, after.Deleted)
	}
}

func load(dir string) (*db.Store, *index.Index) {
	sf, err := os.Open(filepath.Join(dir, "sequences.ndb"))
	if err != nil {
		log.Fatal(err)
	}
	store, err := db.Load(sf)
	sf.Close()
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	xf, err := os.Open(filepath.Join(dir, "intervals.ndx"))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := index.Load(xf)
	xf.Close()
	if err != nil {
		log.Fatalf("%s: %v", dir, err)
	}
	return store, idx
}

func save(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
