// Command cafe-lint runs the repository's static-analysis pass suite
// (see internal/analysis) over the module and reports findings as
//
//	file:line: pass: message
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Usage:
//
//	cafe-lint ./...              # whole module (the directory's module)
//	cafe-lint ./internal/index   # restrict findings to one package
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nucleodb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cafe-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory whose module to analyze")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cafe-lint [-C dir] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	keep, err := matcher(prog, *dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings := analysis.Analyze(prog, analysis.DefaultPasses(), keep)
	for _, line := range analysis.Format(prog, findings) {
		fmt.Fprintln(stdout, line)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cafe-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// matcher converts go-style package patterns (./..., ./internal/index,
// nucleodb/internal/postings) into a package filter. The whole module
// is always loaded — cross-package facts like //cafe:hotpath need it —
// and the patterns only select which packages may report findings.
func matcher(prog *analysis.Program, dir string, patterns []string) (func(string) bool, error) {
	var prefixes []string // match path == p or strings.HasPrefix(path, p+"/")
	var exact []string
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				return nil, nil // everything
			}
		}
		path := pat
		if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
			abs, err := filepath.Abs(filepath.Join(dir, pat))
			if err != nil {
				return nil, fmt.Errorf("cafe-lint: %w", err)
			}
			rel, err := filepath.Rel(prog.Root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("cafe-lint: %s is outside module %s", pat, prog.Module)
			}
			if rel == "." {
				path = prog.Module
			} else {
				path = prog.Module + "/" + filepath.ToSlash(rel)
			}
		}
		if recursive {
			prefixes = append(prefixes, path)
		} else {
			exact = append(exact, path)
		}
	}
	return func(pkgPath string) bool {
		for _, p := range exact {
			if pkgPath == p {
				return true
			}
		}
		for _, p := range prefixes {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}, nil
}
