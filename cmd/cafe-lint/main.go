// Command cafe-lint runs the repository's static-analysis pass suite
// (see internal/analysis) over the module and reports findings as
//
//	file:line: pass: message
//
// or, with -format, as a JSON report or a SARIF 2.1.0 log suitable for
// code-scanning upload. A committed baseline file (-baseline) suppresses
// known findings so the gate only fails on new ones; -write-baseline
// regenerates it from the current findings.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. A package
// that fails to type-check is a load failure: every broken package is
// reported to stderr with its error and the run exits 2, because silent
// partial analysis would let real findings hide behind a typo.
//
// Usage:
//
//	cafe-lint ./...                        # whole module (the directory's module)
//	cafe-lint ./internal/index             # restrict findings to one package
//	cafe-lint -format sarif ./...          # SARIF log on stdout
//	cafe-lint -baseline lint.baseline ./.. # fail only on unbaselined findings
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nucleodb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cafe-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory whose module to analyze")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "baseline file of known findings to suppress")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to the -baseline file and exit 0")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cafe-lint [-C dir] [-format text|json|sarif] [-baseline file [-write-baseline]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "cafe-lint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "cafe-lint: -write-baseline needs -baseline to name the file")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(prog.Failed) > 0 {
		for _, fail := range prog.Failed {
			fmt.Fprintf(stderr, "cafe-lint: package %s failed to load: %v\n", fail.Path, fail.Err)
		}
		fmt.Fprintf(stderr, "cafe-lint: %d package(s) failed to type-check; fix them before linting\n", len(prog.Failed))
		return 2
	}
	keep, err := matcher(prog, *dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings, timings := analysis.AnalyzeTimed(prog, analysis.DefaultPasses(), keep)
	report := analysis.NewReport(prog, findings)
	report.Timings = timings

	if *writeBaseline {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "cafe-lint: %v\n", err)
			return 2
		}
		werr := report.WriteBaseline(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "cafe-lint: write baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "cafe-lint: wrote %d finding(s) to %s\n", report.Count, *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		base, err := analysis.ReadBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "cafe-lint: %v\n", err)
			return 2
		}
		if n := report.ApplyBaseline(base); n > 0 {
			fmt.Fprintf(stderr, "cafe-lint: %d baselined finding(s) suppressed\n", n)
		}
	}

	switch *format {
	case "json":
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "cafe-lint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := report.WriteSARIF(stdout); err != nil {
			fmt.Fprintf(stderr, "cafe-lint: %v\n", err)
			return 2
		}
	default:
		if err := report.WriteText(stdout); err != nil {
			fmt.Fprintf(stderr, "cafe-lint: %v\n", err)
			return 2
		}
	}
	if report.Count > 0 {
		fmt.Fprintf(stderr, "cafe-lint: %d finding(s)\n", report.Count)
		return 1
	}
	return 0
}

// matcher converts go-style package patterns (./..., ./internal/index,
// nucleodb/internal/postings) into a package filter. The whole module
// is always loaded — cross-package facts like //cafe:hotpath need it —
// and the patterns only select which packages may report findings.
func matcher(prog *analysis.Program, dir string, patterns []string) (func(string) bool, error) {
	var prefixes []string // match path == p or strings.HasPrefix(path, p+"/")
	var exact []string
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				return nil, nil // everything
			}
		}
		path := pat
		if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
			abs, err := filepath.Abs(filepath.Join(dir, pat))
			if err != nil {
				return nil, fmt.Errorf("cafe-lint: %w", err)
			}
			rel, err := filepath.Rel(prog.Root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("cafe-lint: %s is outside module %s", pat, prog.Module)
			}
			if rel == "." {
				path = prog.Module
			} else {
				path = prog.Module + "/" + filepath.ToSlash(rel)
			}
		}
		if recursive {
			prefixes = append(prefixes, path)
		} else {
			exact = append(exact, path)
		}
	}
	return func(pkgPath string) bool {
		for _, p := range exact {
			if pkgPath == p {
				return true
			}
		}
		for _, p := range prefixes {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}, nil
}
