package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtureModule = "../../internal/analysis/testdata/src/fixture"

// TestRunFixtureModule drives the CLI end to end against the seeded
// fixture module: dirty tree → exit 1 with findings on stdout, a clean
// package selection → exit 0, no module → exit 2.
func TestRunFixtureModule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on a module with seeded violations, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	for _, marker := range []string{": hotpath: ", ": directive: "} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("stdout lacks a %q finding:\n%s", marker, out.String())
		}
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr lacks the finding count: %q", errb.String())
	}

	// fixture/errs has no hotpath annotations and the default errcheck
	// scope names this repo's packages, so selecting it must be clean.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", fixtureModule, "./errs"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on a clean package selection, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean selection still printed findings:\n%s", out.String())
	}
}

func TestRunNoModule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d outside any module, want 2\nstderr:\n%s", code, errb.String())
	}
}
