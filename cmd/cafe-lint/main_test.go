package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

const (
	fixtureModule = "../../internal/analysis/testdata/src/fixture"
	brokenModule  = "../../internal/analysis/testdata/src/broken"
)

// TestRunFixtureModule drives the CLI end to end against the seeded
// fixture module: dirty tree → exit 1 with findings on stdout, a clean
// package selection → exit 0, no module → exit 2.
func TestRunFixtureModule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on a module with seeded violations, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	for _, marker := range []string{": hotpath: ", ": directive: "} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("stdout lacks a %q finding:\n%s", marker, out.String())
		}
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr lacks the finding count: %q", errb.String())
	}

	// fixture/clean passes every pass in the default suite, so
	// selecting it must be clean even though its siblings are dirty.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", fixtureModule, "./clean"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on a clean package selection, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean selection still printed findings:\n%s", out.String())
	}
}

func TestRunNoModule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d outside any module, want 2\nstderr:\n%s", code, errb.String())
	}
}

// TestRunBrokenPackage locks in the load-failure contract: a package
// that does not type-check makes the run exit 2 with a per-package
// error naming the import path, not exit 0 with the package silently
// skipped.
func TestRunBrokenPackage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", brokenModule, "./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit %d on a module with a type error, want 2\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "package broken/bad failed to load") {
		t.Errorf("stderr does not name the broken package:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "undefined") {
		t.Errorf("stderr does not include the type error:\n%s", errb.String())
	}
}

func TestRunFormatJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "-format", "json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var report struct {
		Module   string `json:"module"`
		Count    int    `json:"count"`
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Pass string `json:"pass"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-format json output does not parse: %v\n%s", err, out.String())
	}
	if report.Module != "fixture" || report.Count == 0 || len(report.Findings) != report.Count {
		t.Errorf("module %q count %d findings %d", report.Module, report.Count, len(report.Findings))
	}
}

func TestRunFormatSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "-format", "sarif", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("-format sarif output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("version %q, %d runs", log.Version, len(log.Runs))
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", fixtureModule, "-format", "yaml", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d on an unknown format, want 2", code)
	}
}

// TestRunSARIFGolden locks the exact SARIF 2.1.0 log for the dataflow
// fixture packages against a committed golden file: rule metadata,
// rule indices, relative URIs, and finding order are all part of the
// contract a code-scanning backend sees. Regenerate with
//
//	go test ./cmd/cafe-lint -run TestRunSARIFGolden -update
func TestRunSARIFGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "-format", "sarif", "./poolesc", "./aliaspkg", "./frozenpkg", "./snappkg", "./lockpkg"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	golden := filepath.Join("testdata", "sarif.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s",
			golden, out.String(), want)
	}
}

// TestRunBaselineFlow exercises the adopt-then-gate workflow:
// -write-baseline captures the current findings, and a rerun against
// that file is clean; deleting the file makes -baseline an error.
func TestRunBaselineFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")
	var out, errb bytes.Buffer
	if code := run([]string{"-C", fixtureModule, "-baseline", base, "-write-baseline", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("-write-baseline exit %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Errorf("stderr does not confirm the write: %q", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", fixtureModule, "-baseline", base, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit %d against a full baseline, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "suppressed") {
		t.Errorf("stderr does not report the suppression: %q", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-C", fixtureModule, "-baseline", filepath.Join(t.TempDir(), "missing"), "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d with a missing baseline file, want 2", code)
	}

	if code := run([]string{"-C", fixtureModule, "-write-baseline", "./..."}, &out, &errb); code != 2 {
		t.Errorf("exit %d for -write-baseline without -baseline, want 2", code)
	}
}
