package nucleodb

import (
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// letters draws a random sequence of IUPAC base letters.
func letters(rng *rand.Rand, n int) string {
	const bases = "ACGT"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(bases[rng.Intn(4)])
	}
	return b.String()
}

// mutateLetters applies point substitutions at the given rate.
func mutateLetters(rng *rand.Rand, s string, rate float64) string {
	const bases = "ACGT"
	out := []byte(s)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = bases[rng.Intn(4)]
		}
	}
	return string(out)
}

// testRecords builds a collection with one family of near-copies of a
// root plus random noise. Returns records, a query, and family ids.
func testRecords(seed int64) ([]Record, string, map[int]bool) {
	rng := rand.New(rand.NewSource(seed))
	root := letters(rng, 700)
	var recs []Record
	family := map[int]bool{}
	for i := 0; i < 5; i++ {
		family[len(recs)] = true
		recs = append(recs, Record{Desc: "fam", Sequence: mutateLetters(rng, root, 0.05)})
	}
	for i := 0; i < 40; i++ {
		recs = append(recs, Record{Desc: "noise", Sequence: letters(rng, 400+rng.Intn(500))})
	}
	start := rng.Intn(len(root) - 250)
	return recs, root[start : start+250], family
}

func TestBuildAndSearch(t *testing.T) {
	recs, query, family := testRecords(61)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	famFound := 0
	for _, r := range rs[:minInt(len(rs), len(family))] {
		if family[r.ID] {
			famFound++
		}
		if r.Desc == "" {
			t.Errorf("result %d missing description", r.ID)
		}
	}
	if famFound < len(family)-1 {
		t.Errorf("found %d of %d family members", famFound, len(family))
	}
	// The default (banded) fine phase produces transcripts too: the
	// top answer carries spans and identity.
	top := rs[0]
	if top.Identity <= 0.5 {
		t.Errorf("banded top identity = %v, want > 0.5", top.Identity)
	}
	if top.QueryEnd <= top.QueryStart || top.SubjectEnd <= top.SubjectStart {
		t.Errorf("banded top spans degenerate: %+v", top)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBuildRejectsBadSequence(t *testing.T) {
	_, err := Build([]Record{{Desc: "bad", Sequence: "ACGX"}}, DefaultBuildConfig())
	if err == nil {
		t.Error("invalid sequence accepted")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not name the record: %v", err)
	}
}

func TestSearchRejectsBadQuery(t *testing.T) {
	recs, _, _ := testRecords(62)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Search("ACG!T", DefaultSearchOptions()); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := db.Search("ACG", DefaultSearchOptions()); err == nil {
		t.Error("too-short query accepted")
	}
}

func TestBuildFromFasta(t *testing.T) {
	fasta := ">one first record\nACGTACGTACGTACGTACGT\nACGTACGTACGT\n>two\nTTTTGGGGCCCCAAAATTTT\n"
	cfg := DefaultBuildConfig()
	cfg.IntervalLength = 6
	db, err := BuildFromFasta(strings.NewReader(fasta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 2 {
		t.Fatalf("NumSequences = %d", db.NumSequences())
	}
	if db.Desc(0) != "one first record" {
		t.Errorf("Desc(0) = %q", db.Desc(0))
	}
	if got := db.Sequence(1); got != "TTTTGGGGCCCCAAAATTTT" {
		t.Errorf("Sequence(1) = %q", got)
	}
	opts := DefaultSearchOptions()
	opts.MinCoarseHits = 1
	rs, err := db.Search("ACGTACGTACGT", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || rs[0].ID != 0 {
		t.Errorf("search in tiny db = %+v", rs)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	recs, query, _ := testRecords(63)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.NumSequences() != db.NumSequences() || reopened.TotalBases() != db.TotalBases() {
		t.Fatal("reopened database shape differs")
	}
	a, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			t.Fatalf("result %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), DefaultScoring()); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestConcurrentSearches(t *testing.T) {
	recs, query, _ := testRecords(64)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := db.Search(query, DefaultSearchOptions())
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExactSearchReportsIdentity(t *testing.T) {
	recs, query, _ := testRecords(65)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSearchOptions()
	opts.Exact = true
	rs, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	top := rs[0]
	if top.Identity <= 0.5 || top.Identity > 1 {
		t.Errorf("top identity = %v, want (0.5,1]", top.Identity)
	}
	if top.QueryEnd <= top.QueryStart || top.SubjectEnd <= top.SubjectStart {
		t.Errorf("degenerate spans: %+v", top)
	}
}

func TestDiagonalSearch(t *testing.T) {
	recs, query, family := testRecords(66)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSearchOptions()
	opts.Diagonal = true
	rs, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if !family[rs[0].ID] {
		t.Errorf("diagonal search top hit %d not in family", rs[0].ID)
	}

	// Diagonal mode on an offsets-free database must fail loudly.
	cfg := DefaultBuildConfig()
	cfg.StoreOffsets = false
	lean, err := Build(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lean.Search(query, opts); err == nil {
		t.Error("diagonal search accepted without offsets")
	}
}

func TestStats(t *testing.T) {
	recs, _, _ := testRecords(67)
	cfg := DefaultBuildConfig()
	cfg.StopFraction = 0.01
	db, err := Build(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.NumSequences != len(recs) || st.TotalBases != db.TotalBases() {
		t.Errorf("stats shape wrong: %+v", st)
	}
	if st.StoreBytes <= 0 || st.IndexBytes <= 0 || st.TermsIndexed <= 0 {
		t.Errorf("stats sizes missing: %+v", st)
	}
	if st.TermsStopped == 0 {
		t.Errorf("stopping recorded no terms: %+v", st)
	}
	if st.IntervalLen != cfg.IntervalLength {
		t.Errorf("IntervalLen = %d", st.IntervalLen)
	}
	// Compression sanity: store well below 1 byte/base.
	if float64(st.StoreBytes) > 0.4*float64(st.TotalBases) {
		t.Errorf("store %d bytes for %d bases", st.StoreBytes, st.TotalBases)
	}
}
