package nucleodb

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestSearchContextCancelledProperty: for random corpora and queries,
// SearchContext with an already-cancelled context returns
// context.Canceled and no results — regardless of options (strands,
// prescreen, parallel fine phase, exact alignment).
func TestSearchContextCancelledProperty(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for seed := int64(1); seed <= 5; seed++ {
		recs, query, _ := testRecords(seed)
		db, err := Build(recs, DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for _, opts := range []SearchOptions{
			DefaultSearchOptions(),
			{Candidates: 50, MinCoarseHits: 1, Band: 16, Limit: 10, BothStrands: true, Prescreen: 20},
			{Candidates: 100, MinCoarseHits: 2, Band: 24, FineWorkers: 4},
			{Candidates: 30, MinCoarseHits: 1, Exact: true, Limit: 5},
		} {
			q := query
			if rng.Intn(2) == 0 {
				q = letters(rng, 120)
			}
			rs, err := db.SearchContext(ctx, q, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("seed %d opts %+v: err = %v, want context.Canceled", seed, opts, err)
			}
			if rs != nil {
				t.Fatalf("seed %d: cancelled search returned %d results", seed, len(rs))
			}
		}
		if _, err := db.SearchBatchContext(ctx, []string{query, query[:100]}, DefaultSearchOptions(), 2); !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: batch err = %v, want context.Canceled", seed, err)
		}
	}
}

// TestSearchContextBackgroundEquivalence: SearchContext under
// context.Background() is byte-identical to Search — the cancellation
// checks only observe.
func TestSearchContextBackgroundEquivalence(t *testing.T) {
	for seed := int64(7); seed <= 9; seed++ {
		recs, query, _ := testRecords(seed)
		db, err := Build(recs, DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []SearchOptions{
			DefaultSearchOptions(),
			{Candidates: 40, MinCoarseHits: 1, Band: 16, Limit: 10, BothStrands: true, Prescreen: 15, FineWorkers: 3},
		} {
			plain, err := db.Search(query, opts)
			if err != nil {
				t.Fatal(err)
			}
			ctxed, err := db.SearchContext(context.Background(), query, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, ctxed) {
				t.Fatalf("seed %d opts %+v: SearchContext(Background) diverged from Search:\n%v\nvs\n%v",
					seed, opts, plain, ctxed)
			}
		}
	}
}

// TestSearchContextDeadline: an expired deadline surfaces as
// context.DeadlineExceeded through the facade wrapping.
func TestSearchContextDeadline(t *testing.T) {
	recs, query, _ := testRecords(3)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	if _, err := db.SearchContext(ctx, query, DefaultSearchOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBatchStatsErrorLeavesSignificanceZero is the regression test for
// SearchBatchWithStats's handling of a failed Karlin–Altschul
// calibration: with a scoring scheme whose expected score is
// non-negative (statistics undefined), the batch must still return
// results, with Bits and EValue zero on every result — exactly the
// behaviour of single-query Search. Before this was pinned down, the
// statsErr from d.Statistics() was silently captured with no statement
// of intent.
func TestBatchStatsErrorLeavesSignificanceZero(t *testing.T) {
	recs, query, _ := testRecords(21)
	// Match with no mismatch or gap-open penalty: expected score is
	// positive, so local-alignment statistics are undefined.
	cfg := DefaultBuildConfig()
	cfg.Scoring = Scoring{Match: 1, Mismatch: 0, GapOpen: 0, GapExtend: 1}
	db, err := Build(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Statistics(); err == nil {
		t.Fatal("Statistics() succeeded for a non-negative-expectation scoring; test premise broken")
	}
	queries := []string{query, query[:120]}
	batch, _, err := db.SearchBatchWithStats(queries, DefaultSearchOptions(), 2)
	if err != nil {
		t.Fatalf("batch failed on statsErr: %v", err)
	}
	for i, rs := range batch {
		if len(rs) == 0 {
			t.Fatalf("query %d: no results", i)
		}
		single, err := db.Search(queries[i], DefaultSearchOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, single) {
			t.Fatalf("query %d: batch diverged from single search under statsErr", i)
		}
		for _, r := range rs {
			if r.Bits != 0 || r.EValue != 0 {
				t.Fatalf("query %d: result has Bits %v EValue %v, want zero (no statistics)", i, r.Bits, r.EValue)
			}
		}
	}
}

// TestConcurrentSearchesPooled: concurrent Search calls on one
// Database produce the same answers as serial calls (the searcher pool
// hands each goroutine private scratch).
func TestConcurrentSearchesPooled(t *testing.T) {
	recs, query, _ := testRecords(33)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{query, query[:150], query[40:], query[20:200]}
	want := make([][]Result, len(queries))
	for i, q := range queries {
		if want[i], err = db.Search(q, DefaultSearchOptions()); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 8
	errc := make(chan error, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for i, q := range queries {
			go func(i int, q string) {
				rs, err := db.Search(q, DefaultSearchOptions())
				if err == nil && !reflect.DeepEqual(rs, want[i]) {
					err = errors.New("concurrent search diverged from serial")
				}
				errc <- err
			}(i, q)
		}
	}
	for i := 0; i < rounds*len(queries); i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
