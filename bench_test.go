// Benchmarks regenerating the paper's tables and figures as testing.B
// targets — one benchmark (family) per experiment, matching the
// experiment index in DESIGN.md. Run them all with:
//
//	go test -bench=. -benchmem
//
// The cafe-bench command prints the same measurements as tables with
// recall columns; these benchmarks give the standard Go tooling view
// (ns/op, allocs) of the identical code paths.
package nucleodb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/baseline"
	"nucleodb/internal/compress"
	"nucleodb/internal/core"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/experiments"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// benchEnv is the shared collection/workload for all benchmarks,
// built once.
var (
	benchOnce sync.Once
	benchE    *experiments.Env
	benchIdx  *index.Index
	benchErr  error
)

func benchSetup(b *testing.B) (*experiments.Env, *index.Index) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.Quick(1)
		cfg.BaseBases = 1_000_000
		cfg.NumQueries = 8
		benchE, benchErr = experiments.NewEnv(cfg, cfg.BaseBases)
		if benchErr != nil {
			return
		}
		benchIdx, _, benchErr = benchE.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchE, benchIdx
}

// BenchmarkIndexBuild is experiment E1 (Table 1): index construction
// across interval lengths. b.N full builds of the collection's index.
func BenchmarkIndexBuild(b *testing.B) {
	env, _ := benchSetup(b)
	for _, k := range []int{6, 8, 9, 10, 12} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(env.TotalBases()))
			for i := 0; i < b.N; i++ {
				if _, err := index.Build(env.Store, index.Options{K: k, StoreOffsets: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPostingsDecode is experiment E2 (Table 2): streaming every
// posting list of the index through the compressed-list iterator, the
// coarse phase's inner loop.
func BenchmarkPostingsDecode(b *testing.B) {
	_, idx := benchSetup(b)
	var terms []kmer.Term
	idx.Terms(func(t kmer.Term, df int) { terms = append(terms, t) })
	var it postings.Iterator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, t := range terms {
			idx.Reader(t, &it)
			for it.Next() {
				n++
			}
			if err := it.Err(); err != nil {
				b.Fatal(err)
			}
		}
		if n != idx.TotalPostings() {
			b.Fatalf("decoded %d postings, want %d", n, idx.TotalPostings())
		}
	}
}

// BenchmarkSearch is experiment E3 (Table 3): one query evaluation per
// iteration for each method, on the same collection and query.
func BenchmarkSearch(b *testing.B) {
	env, idx := benchSetup(b)
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		b.Fatal(err)
	}
	query := env.Queries[0].Codes
	opts := core.DefaultOptions()
	exact := opts
	exact.FineMode = core.FineFull

	b.Run("partitioned-banded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := searcher.Search(query, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partitioned-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := searcher.Search(query, exact); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sw-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.SWScan(env.Store, query, env.Scoring, 1, 20)
		}
	})
	b.Run("fasta-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.FastaScan(env.Store, query, env.Scoring, baseline.DefaultFastaOptions(), 1, 20)
		}
	})
	b.Run("blast-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			baseline.BlastScan(env.Store, query, env.Scoring, baseline.DefaultBlastOptions(), 1, 20)
		}
	})
	b.Run("partitioned-paged", func(b *testing.B) {
		// The same evaluation against a disk-resident index (E11).
		path := filepath.Join(b.TempDir(), "idx.ndx")
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.Save(f); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		disk, err := index.OpenDisk(path)
		if err != nil {
			b.Fatal(err)
		}
		defer disk.Close()
		pagedSearcher, err := core.NewSearcher(disk, env.Store, env.Scoring)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pagedSearcher.Search(query, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoarse is experiment E4 (Figure 1): the coarse phase alone,
// whose cost determines how cheaply candidates can be ranked.
func BenchmarkCoarse(b *testing.B) {
	env, idx := benchSetup(b)
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		b.Fatal(err)
	}
	query := env.Queries[0].Codes
	for i := 0; i < b.N; i++ {
		if _, err := searcher.Coarse(query, core.CoarseDistinct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchStopped is experiment E5 (Table 4): query cost under
// index stopping.
func BenchmarkSearchStopped(b *testing.B) {
	env, _ := benchSetup(b)
	for _, stop := range []float64{0, 0.01, 0.10} {
		idx, err := index.Build(env.Store, index.Options{K: 9, StoreOffsets: true, StopFraction: stop})
		if err != nil {
			b.Fatal(err)
		}
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			b.Fatal(err)
		}
		query := env.Queries[0].Codes
		b.Run(fmt.Sprintf("stop=%.0f%%", stop*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := searcher.Search(query, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaling is experiment E6 (Figure 2): partitioned query cost
// across collection sizes (the exhaustive comparison lives in
// BenchmarkSearch/sw-scan; cafe-bench prints both against each size).
func BenchmarkScaling(b *testing.B) {
	for _, bases := range []int{250_000, 500_000, 1_000_000} {
		cfg := experiments.Quick(int64(bases))
		cfg.NumQueries = 4
		env, err := experiments.NewEnv(cfg, bases)
		if err != nil {
			b.Fatal(err)
		}
		idx, _, err := env.BuildIndex(index.Options{K: 9, StoreOffsets: true})
		if err != nil {
			b.Fatal(err)
		}
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			b.Fatal(err)
		}
		query := env.Queries[0].Codes
		b.Run(fmt.Sprintf("bases=%d", bases), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := searcher.Search(query, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectCoding is experiment E7 (Table 5): sequence-store
// coding and decoding throughput.
func BenchmarkDirectCoding(b *testing.B) {
	env, _ := benchSetup(b)
	n := env.Store.Len()
	seqs := make([][]byte, n)
	encoded := make([][]byte, n)
	var dc dna.DirectCoder
	totalBases := 0
	for id := 0; id < n; id++ {
		seqs[id] = env.Store.Sequence(id)
		encoded[id] = dc.Encode(nil, seqs[id])
		totalBases += len(seqs[id])
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(totalBases))
		for i := 0; i < b.N; i++ {
			var coder dna.DirectCoder
			buf := make([]byte, 0, totalBases/3)
			for _, s := range seqs {
				buf = coder.Encode(buf[:0], s)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(totalBases))
		for i := 0; i < b.N; i++ {
			var coder dna.DirectCoder
			for _, e := range encoded {
				if _, _, err := coder.Decode(e); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("store-random-access", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.Store.Sequence(i % n)
		}
	})
}

// BenchmarkCoarseModes is experiment E8 (Table 6): the coarse-ranking
// ablation.
func BenchmarkCoarseModes(b *testing.B) {
	env, idx := benchSetup(b)
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		b.Fatal(err)
	}
	query := env.Queries[0].Codes
	for _, mode := range []core.CoarseMode{core.CoarseDistinct, core.CoarseTotal, core.CoarseNormalised, core.CoarseDiagonal} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := searcher.Coarse(query, mode, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlign measures the alignment kernels underlying everything:
// cost per DP cell of the full and banded Smith–Waterman.
func BenchmarkAlign(b *testing.B) {
	env, _ := benchSetup(b)
	a := env.Queries[0].Codes
	s := env.Store.Sequence(0)
	scoring := align.DefaultScoring()
	b.Run("local-score", func(b *testing.B) {
		b.SetBytes(int64(len(a)) * int64(len(s)) / 1024) // "KB" = kilo-cells
		for i := 0; i < b.N; i++ {
			align.LocalScore(a, s, scoring)
		}
	})
	b.Run("banded-32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.BandedLocalScore(a, s, 0, 32, scoring)
		}
	})
	b.Run("local-traceback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Local(a, s, scoring)
		}
	})
}

// BenchmarkStoreBuild measures store construction from records,
// dominated by direct coding.
func BenchmarkStoreBuild(b *testing.B) {
	env, _ := benchSetup(b)
	recs := make([]dna.Record, env.Store.Len())
	for i := range recs {
		recs[i] = dna.Record{Desc: "r", Codes: env.Store.Sequence(i)}
	}
	b.SetBytes(int64(env.TotalBases()))
	for i := 0; i < b.N; i++ {
		db.FromRecords(recs)
	}
}

// BenchmarkIntCodes measures raw integer-code throughput, the inner
// loop of postings decoding (supports E2).
func BenchmarkIntCodes(b *testing.B) {
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(1 + i%200)
	}
	for _, scheme := range compress.Schemes {
		buf, err := compress.EncodeStream(scheme, vals)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]uint64, len(vals))
		b.Run(scheme.String(), func(b *testing.B) {
			b.SetBytes(int64(8 * len(vals)))
			for i := 0; i < b.N; i++ {
				if _, err := compress.DecodeStreamInto(scheme, buf, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGen measures synthetic collection generation, the
// substrate every experiment rests on.
func BenchmarkWorkloadGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(gen.DefaultConfig(200, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryLength is experiment E10: partitioned query cost
// across query lengths.
func BenchmarkQueryLength(b *testing.B) {
	env, idx := benchSetup(b)
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		b.Fatal(err)
	}
	full := env.Queries[0].Codes
	opts := core.DefaultOptions()
	for _, qlen := range []int{100, 200, 400} {
		q := full
		if len(q) > qlen {
			q = q[:qlen]
		}
		b.Run(fmt.Sprintf("qlen=%d", len(q)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := searcher.Search(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlignVariants measures the extended aligners against the
// baseline kernels: linear-space traceback, glocal, and repeated HSPs.
func BenchmarkAlignVariants(b *testing.B) {
	env, _ := benchSetup(b)
	a := env.Queries[0].Codes
	s := env.Store.Sequence(0)
	scoring := align.DefaultScoring()
	b.Run("local-linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.LocalLinear(a, s, scoring)
		}
	})
	b.Run("glocal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.Glocal(a, s, scoring)
		}
	})
	b.Run("local-all-3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			align.LocalAll(a, s, scoring, 50, 3)
		}
	})
}

// BenchmarkSearchBatch measures multi-query throughput with per-worker
// search state, against the serialised path.
func BenchmarkSearchBatch(b *testing.B) {
	env, idx := benchSetup(b)
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, len(env.Queries))
	for i := range env.Queries {
		queries[i] = env.Queries[i].Codes
	}
	opts := core.DefaultOptions()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := searcher.Search(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIndexMerge measures segment merging (Database.Append's
// cost) against a full rebuild of the combined collection.
func BenchmarkIndexMerge(b *testing.B) {
	env, idx := benchSetup(b)
	segCfg := experiments.Quick(7)
	segEnv, err := experiments.NewEnv(segCfg, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	segIdx, _, err := segEnv.BuildIndex(index.Options{K: 9, StoreOffsets: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := index.Merge(idx, segIdx); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = env
}

// BenchmarkIntersect measures conjunctive term intersection with and
// without skip support (experiment E9's kernel).
func BenchmarkIntersect(b *testing.B) {
	env, _ := benchSetup(b)
	for _, skip := range []int{0, 8} {
		idx, err := index.Build(env.Store, index.Options{K: 6, SkipInterval: skip})
		if err != nil {
			b.Fatal(err)
		}
		coder := kmer.MustCoder(6)
		var terms []kmer.Term
		coder.ExtractFunc(env.Queries[0].Codes, func(_ int, t kmer.Term) {
			if len(terms) < 4 && idx.DF(t) > 0 {
				terms = append(terms, t)
			}
		})
		if len(terms) < 2 {
			b.Skip("query too short for intersection bench")
		}
		b.Run(fmt.Sprintf("skip=%d", skip), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.IntersectTerms(terms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
