package nucleodb

import (
	"math/rand"
	"testing"
)

func TestHSPsRepeatedDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	domain := letters(rng, 80)
	subject := letters(rng, 100) + domain + letters(rng, 120) + domain + letters(rng, 100)
	recs := []Record{{Desc: "two-domain", Sequence: subject}}
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Desc: "noise", Sequence: letters(rng, 300)})
	}
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	hsps, err := db.HSPs(domain, 0, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) != 2 {
		t.Fatalf("got %d HSPs, want 2", len(hsps))
	}
	for _, h := range hsps {
		if h.Identity < 0.99 {
			t.Errorf("domain copy identity %.2f", h.Identity)
		}
		if h.EValue > 1e-10 {
			t.Errorf("domain copy E-value %g", h.EValue)
		}
	}
	if hsps[0].SubjectStart == hsps[1].SubjectStart {
		t.Error("HSPs not disjoint")
	}
}

func TestHSPsErrors(t *testing.T) {
	recs, query, _ := testRecords(86)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.HSPs("AC-GT", 0, 3, 1); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := db.HSPs(query, 999999, 3, 1); err == nil {
		t.Error("out-of-range id accepted")
	}
}
