package nucleodb

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// sigBackendGrid is the public-API option matrix the signature
// equivalence suite compares across: every coarse ranking, serial and
// parallel coarse/fine workers, both strands, and the exact fine phase.
func sigBackendGrid() map[string]SearchOptions {
	grid := map[string]SearchOptions{}
	for _, mode := range []string{"distinct", "total", "normalised", "diagonal"} {
		opts := DefaultSearchOptions()
		opts.CoarseMode = mode
		grid[mode] = opts
	}
	parallel := DefaultSearchOptions()
	parallel.CoarseWorkers = 3
	parallel.FineWorkers = 2
	grid["parallel"] = parallel

	strands := DefaultSearchOptions()
	strands.CoarseMode = "total"
	strands.BothStrands = true
	grid["strands-total"] = strands

	exact := DefaultSearchOptions()
	exact.Exact = true
	exact.FineKernel = "bitvector"
	grid["exact-bitvector"] = exact
	return grid
}

// mustEqualBackends proves the signature coarse backend answers
// byte-identically to the postings backend on the same database, across
// the whole option grid.
func mustEqualBackends(t *testing.T, label string, db *Database, query string) {
	t.Helper()
	if !db.HasSignatures() {
		t.Fatalf("%s: database lost its signatures", label)
	}
	for name, opts := range sigBackendGrid() {
		postings := opts
		postings.CoarseBackend = "postings"
		want, err := db.Search(query, postings)
		if err != nil {
			t.Fatalf("%s/%s: postings: %v", label, name, err)
		}
		signature := opts
		signature.CoarseBackend = "signature"
		got, wantStats, err := db.SearchWithStats(query, signature)
		if err != nil {
			t.Fatalf("%s/%s: signature: %v", label, name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: signature results diverge from postings\n got %+v\nwant %+v", label, name, got, want)
		}
		if wantStats.CoarseBackend != "signature" {
			t.Fatalf("%s/%s: stats backend = %q, want signature", label, name, wantStats.CoarseBackend)
		}
		if wantStats.SigProbes == 0 {
			t.Fatalf("%s/%s: signature run recorded no probes", label, name)
		}
	}
}

// sigBuildConfig is DefaultBuildConfig with signatures enabled.
func sigBuildConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.Signatures = true
	return cfg
}

// buildSegmentedSig builds recs in k append batches with signatures
// enabled from the first segment (appends inherit the geometry).
func buildSegmentedSig(t *testing.T, recs []Record, k int, rng *rand.Rand) *Database {
	t.Helper()
	batches := splitRecords(rng, recs, k)
	db, err := Build(batches[0], sigBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(math.MaxInt32)
	for _, b := range batches[1:] {
		if err := db.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.NumSegments(); got != k {
		t.Fatalf("built %d segments, want %d", got, k)
	}
	if !db.HasSignatures() {
		t.Fatal("segmented build with Signatures lost them across appends")
	}
	return db
}

// TestSignatureEquivalenceProperty is the second-backend lockdown: for
// random record streams split into k append batches, the bit-sliced
// signature backend answers byte-identically to the postings backend —
// across the whole coarse-mode and worker grid, at every compaction
// state from fully unfolded to fully folded.
func TestSignatureEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property matrix skipped in -short mode (covered by the full run and CI's sig-equivalence job)")
	}
	for trial := 0; trial < 2; trial++ {
		recs, query, _ := testRecords(int64(500 + trial))
		rng := rand.New(rand.NewSource(int64(600 + trial)))
		for _, k := range []int{1, 3, 6} {
			db := buildSegmentedSig(t, recs, k, rng)
			mustEqualBackends(t, fmt.Sprintf("trial%d/k%d/unfolded", trial, k), db, query)

			// Fold step by step; MergeRun must rebuild the merged
			// segment's signatures, keeping the backend available at
			// every intermediate compaction state.
			db.SetMaxSegments(1)
			for step := 0; ; step++ {
				n, err := db.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
				mustEqualBackends(t, fmt.Sprintf("trial%d/k%d/fold%d", trial, k, step), db, query)
			}
		}
	}
}

// TestSignatureSaveReloadEquivalence checks the persistence path: the
// .sig files ride in the segment directory, survive SaveSegmented →
// Open and OpenPaged, and the reloaded signatures still answer
// identically to postings.
func TestSignatureSaveReloadEquivalence(t *testing.T) {
	recs, query, _ := testRecords(510)
	rng := rand.New(rand.NewSource(511))
	db := buildSegmentedSig(t, recs, 3, rng)

	dir := filepath.Join(t.TempDir(), "sigdb")
	if err := db.SaveSegmented(dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.HasSignatures() {
		t.Fatal("signatures did not survive SaveSegmented → Open")
	}
	mustEqualBackends(t, "reloaded", reloaded, query)

	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if !paged.HasSignatures() {
		t.Fatal("signatures did not survive OpenPaged")
	}
	mustEqualBackends(t, "paged", paged, query)

	// Appends to the reloaded database keep the backend live.
	extra, _, _ := testRecords(512)
	reloaded.SetMaxSegments(math.MaxInt32)
	if err := reloaded.Append(extra[:10]); err != nil {
		t.Fatal(err)
	}
	mustEqualBackends(t, "reloaded+append", reloaded, query)
}

// TestSignatureBackendUnavailable pins the failure mode: requesting the
// signature backend on a database built without signatures is an error,
// not a silent fallback; "auto" remains fine and resolves to postings.
func TestSignatureBackendUnavailable(t *testing.T) {
	recs, query, _ := testRecords(520)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if db.HasSignatures() {
		t.Fatal("default build should not carry signatures")
	}
	opts := DefaultSearchOptions()
	opts.CoarseBackend = "signature"
	if _, err := db.Search(query, opts); err == nil {
		t.Fatal("signature backend on a signature-less database did not error")
	}
	opts.CoarseBackend = "auto"
	if _, st, err := db.SearchWithStats(query, opts); err != nil {
		t.Fatal(err)
	} else if st.CoarseBackend != "postings" {
		t.Fatalf("auto resolved to %q, want postings", st.CoarseBackend)
	}
	opts.CoarseBackend = "bitmap"
	if _, err := db.Search(query, opts); err == nil {
		t.Fatal("unknown coarse backend accepted")
	}
	opts.CoarseBackend = ""
	opts.CoarseMode = "cosine"
	if _, err := db.Search(query, opts); err == nil {
		t.Fatal("unknown coarse mode accepted")
	}
}
