package nucleodb

import (
	"fmt"
	"runtime"
	"sync"

	"nucleodb/internal/core"
	"nucleodb/internal/dna"
)

// SearchBatch evaluates many queries concurrently and returns the
// per-query result lists in input order. Each worker owns its own
// searcher state, so throughput scales with cores instead of
// serialising on the Database's internal lock the way concurrent
// Search calls do. workers ≤ 0 uses all CPUs. The first error aborts
// the batch.
func (d *Database) SearchBatch(queries []string, opts SearchOptions, workers int) ([][]Result, error) {
	out, _, err := d.SearchBatchWithStats(queries, opts, workers)
	return out, err
}

// SearchBatchWithStats is SearchBatch plus the aggregated work and
// latency stats of the whole batch: every per-query SearchStats summed
// field-wise (so TotalTime is accumulated search time across workers,
// not the batch's wall time). Results are identical to SearchBatch's.
func (d *Database) SearchBatchWithStats(queries []string, opts SearchOptions, workers int) ([][]Result, SearchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([][]Result, len(queries))
	var agg SearchStats
	if len(queries) == 0 {
		return out, agg, nil
	}

	// Encode everything up front so input errors name the query and
	// arrive before any work runs.
	encoded := make([][]byte, len(queries))
	for i, q := range queries {
		codes, err := dna.Encode([]byte(q))
		if err != nil {
			return nil, agg, fmt.Errorf("nucleodb: query %d: %w", i, err)
		}
		encoded[i] = codes
	}
	params, statsErr := d.Statistics()

	type result struct {
		i   int
		rs  []core.Result
		st  SearchStats
		err error
	}
	work := make(chan int)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		searcher, err := core.NewSearcher(d.idx, d.store, d.scoring)
		if err != nil {
			return nil, agg, fmt.Errorf("nucleodb: %w", err)
		}
		wg.Add(1)
		go func(s *core.Searcher) {
			defer wg.Done()
			var cst core.SearchStats
			for i := range work {
				rs, err := s.SearchWithStats(encoded[i], opts.internal(), &cst)
				results <- result{i, rs, searchStatsFrom(cst), err}
			}
		}(searcher)
	}
	go func() {
		for i := range queries {
			work <- i
		}
		close(work)
		wg.Wait()
		close(results)
	}()

	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("nucleodb: query %d: %w", r.i, r.err)
			}
			continue
		}
		agg.Add(r.st)
		recordSearchMetrics(r.st)
		rs := make([]Result, len(r.rs))
		for k, cr := range r.rs {
			rs[k] = Result{
				ID:           cr.ID,
				Desc:         d.store.Desc(cr.ID),
				Score:        cr.Score,
				Identity:     cr.Alignment.Identity(),
				QueryStart:   cr.Alignment.AStart,
				QueryEnd:     cr.Alignment.AEnd,
				SubjectStart: cr.Alignment.BStart,
				SubjectEnd:   cr.Alignment.BEnd,
				Reverse:      cr.Reverse,
			}
			if statsErr == nil {
				rs[k].Bits = params.BitScore(cr.Score)
				rs[k].EValue = params.EValue(cr.Score, len(encoded[r.i]), d.store.TotalBases())
			}
		}
		out[r.i] = rs
	}
	if firstErr != nil {
		return nil, agg, firstErr
	}
	return out, agg, nil
}
