package nucleodb

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"nucleodb/internal/core"
	"nucleodb/internal/dna"
)

// SearchBatch evaluates many queries concurrently and returns the
// per-query result lists in input order. Each worker owns its own
// searcher state (borrowed from the Database's searcher pool), so
// throughput scales with cores. workers ≤ 0 uses all CPUs. The first
// error aborts the batch.
//
// Per-query parallelism knobs compose multiplicatively with the batch
// fan-out: opts.CoarseWorkers and opts.FineWorkers apply inside every
// query, so a batch at full CPU width usually wants them at 0 (serial)
// — the batch is already saturating the cores — while a latency-bound
// batch of a few heavy queries benefits from setting them.
func (d *Database) SearchBatch(queries []string, opts SearchOptions, workers int) ([][]Result, error) {
	out, _, err := d.SearchBatchWithStats(queries, opts, workers)
	return out, err
}

// SearchBatchContext is SearchBatch with cooperative cancellation:
// when ctx ends, in-flight queries stop at their next posting-list or
// candidate boundary, no further queries start, and the batch returns
// an error wrapping ctx.Err().
func (d *Database) SearchBatchContext(ctx context.Context, queries []string, opts SearchOptions, workers int) ([][]Result, error) {
	out, _, err := d.SearchBatchWithStatsContext(ctx, queries, opts, workers)
	return out, err
}

// SearchBatchWithStats is SearchBatch plus the aggregated work and
// latency stats of the whole batch: every per-query SearchStats summed
// field-wise (so TotalTime is accumulated search time across workers,
// not the batch's wall time). Results are identical to SearchBatch's.
func (d *Database) SearchBatchWithStats(queries []string, opts SearchOptions, workers int) ([][]Result, SearchStats, error) {
	return d.SearchBatchWithStatsContext(context.Background(), queries, opts, workers)
}

// SearchBatchWithStatsContext is SearchBatchWithStats with cooperative
// cancellation (see SearchBatchContext).
//
// Significance calibration follows the same contract as Search: when
// d.Statistics() fails (the scoring scheme admits no local-alignment
// statistics), the batch still runs and every Result reports Bits and
// EValue as zero — calibration failure is a property of the scoring
// scheme, not of any query, so it deliberately does not abort the
// batch. Callers who need to distinguish "no significance available"
// from "significance ≈ 0" should consult d.Statistics() directly.
func (d *Database) SearchBatchWithStatsContext(ctx context.Context, queries []string, opts SearchOptions, workers int) ([][]Result, SearchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([][]Result, len(queries))
	var agg SearchStats
	if len(queries) == 0 {
		return out, agg, nil
	}

	// Encode everything up front so input errors name the query and
	// arrive before any work runs.
	encoded := make([][]byte, len(queries))
	for i, q := range queries {
		codes, err := dna.Encode([]byte(q))
		if err != nil {
			return nil, agg, fmt.Errorf("nucleodb: query %d: %w", i, err)
		}
		encoded[i] = codes
	}
	params, statsErr := d.Statistics()

	type result struct {
		i   int
		rs  []core.Result
		st  SearchStats
		err error
	}
	// Pin one snapshot for the whole batch: every worker searches the
	// same segment set, so results are mutually consistent even while
	// appends or compactions publish new snapshots mid-batch.
	set := d.snap.Load()
	work := make(chan int)
	results := make(chan result)
	var wg sync.WaitGroup
	searchers := make([]*core.Searcher, workers)
	for w := 0; w < workers; w++ {
		searcher, err := d.searcherFor(set)
		if err != nil {
			return nil, agg, fmt.Errorf("nucleodb: %w", err)
		}
		searchers[w] = searcher
		wg.Add(1)
		go func(s *core.Searcher) {
			defer wg.Done()
			var cst core.SearchStats
			for i := range work {
				rs, err := s.SearchWithStatsContext(ctx, encoded[i], opts.internal(), &cst)
				results <- result{i, rs, searchStatsFrom(cst), err}
			}
		}(searcher)
	}
	go func() { //cafe:allow poolescape the drain goroutine joins the workers via wg.Wait then returns every searcher to the pool before close(results) unblocks the caller
		// Feeding stops as soon as ctx ends; the workers' own ctx
		// checks cover queries already under evaluation.
		for i := range queries {
			if ctx.Err() != nil {
				break
			}
			work <- i
		}
		close(work)
		wg.Wait()
		for _, s := range searchers {
			d.putSearcher(s)
		}
		close(results)
	}()

	var firstErr error
	for r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("nucleodb: query %d: %w", r.i, r.err)
			}
			continue
		}
		agg.Add(r.st)
		recordSearchMetrics(r.st)
		rs := make([]Result, len(r.rs))
		for k, cr := range r.rs {
			rs[k] = Result{
				ID:           cr.ID,
				Desc:         set.Desc(cr.ID),
				Score:        cr.Score,
				Identity:     cr.Alignment.Identity(),
				QueryStart:   cr.Alignment.AStart,
				QueryEnd:     cr.Alignment.AEnd,
				SubjectStart: cr.Alignment.BStart,
				SubjectEnd:   cr.Alignment.BEnd,
				Reverse:      cr.Reverse,
			}
			if statsErr == nil {
				rs[k].Bits = params.BitScore(cr.Score)
				rs[k].EValue = params.EValue(cr.Score, len(encoded[r.i]), set.TotalBases())
			}
		}
		out[r.i] = rs
	}
	if firstErr == nil && ctx.Err() != nil {
		// The feeder stopped early on a cancelled context without any
		// worker observing it (e.g. ctx ended before the first query
		// was handed out).
		firstErr = fmt.Errorf("nucleodb: %w", ctx.Err())
	}
	if firstErr != nil {
		return nil, agg, firstErr
	}
	return out, agg, nil
}
